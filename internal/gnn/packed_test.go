package gnn

import (
	"strings"
	"testing"
)

// packBase returns an operator-only base graph (source -> filter -> sink)
// whose feature slices and flow edges are shared by every candidate, the
// way core.BatchFeaturizer builds candidate graphs.
func packBase() *Graph {
	return &Graph{
		Nodes: []Node{
			{Kind: KindSource, Feat: []float64{0.4, 0.5}},
			{Kind: KindFilter, Feat: []float64{0.2, 0.9, 0.1}},
			{Kind: KindSink, Feat: []float64{1}},
		},
		FlowEdges: [][2]int{{0, 1}, {1, 2}},
	}
}

var packHostFeats = [][]float64{
	{0.5, 0.5, 0.5, 0.5},
	{1, 1, 1, 1},
	{0.1, 0.8, 0.3, 0.6},
}

// packCandidates derives one candidate graph per placement, mirroring
// core's attachHosts: node header copies sharing the base feature slices,
// host nodes appended in first-use order, placement edges in operator
// order.
func packCandidates(base *Graph, placements [][]int) []*Graph {
	out := make([]*Graph, len(placements))
	for ci, p := range placements {
		nodes := make([]Node, len(base.Nodes), len(base.Nodes)+len(p))
		copy(nodes, base.Nodes)
		g := &Graph{Nodes: nodes, FlowEdges: base.FlowEdges}
		hostNode := map[int]int{}
		for opIdx, h := range p {
			node, ok := hostNode[h]
			if !ok {
				node = len(g.Nodes)
				hostNode[h] = node
				g.Nodes = append(g.Nodes, Node{Kind: KindHost, Feat: packHostFeats[h]})
			}
			g.PlaceEdges = append(g.PlaceEdges, [2]int{opIdx, node})
		}
		out[ci] = g
	}
	return out
}

// packPlacements covers the structural variety of one search round:
// co-located, spread, and partially shared hosts.
var packPlacements = [][]int{
	{0, 0, 0},
	{0, 1, 2},
	{2, 2, 1},
	{1, 0, 1},
	{2, 0, 0},
}

// TestInferEnsembleBatchMatchesInferEnsemble pins the packed multi-graph
// pass to the per-graph stacked pass, bit for bit, for every candidate
// and member — at the full tile size and for every sub-tiling, so the
// result is provably independent of how a round is split into tiles.
func TestInferEnsembleBatchMatchesInferEnsemble(t *testing.T) {
	models := newTestEnsemble(t, 3)
	sm, err := Stack(models)
	if err != nil {
		t.Fatal(err)
	}
	base := packBase()
	plan, err := NewPlan(base)
	if err != nil {
		t.Fatal(err)
	}
	graphs := packCandidates(base, packPlacements)

	want := make([]float64, len(graphs)*sm.K())
	ss := NewStackedScratch()
	for ci, g := range graphs {
		if err := sm.InferEnsemble(g, plan, ss, want[ci*sm.K():(ci+1)*sm.K()]); err != nil {
			t.Fatal(err)
		}
	}

	bs := NewBatchScratch()
	var pg *PackedGraphs
	for _, tile := range []int{1, 2, 3, len(graphs)} {
		for lo := 0; lo < len(graphs); lo += tile {
			hi := min(lo+tile, len(graphs))
			pg, err = PackGraphs(graphs[lo:hi], plan, pg)
			if err != nil {
				t.Fatal(err)
			}
			got := make([]float64, (hi-lo)*sm.K())
			if err := sm.InferEnsembleBatch(pg, bs, got); err != nil {
				t.Fatal(err)
			}
			for ci := lo; ci < hi; ci++ {
				for m := 0; m < sm.K(); m++ {
					g, w := got[(ci-lo)*sm.K()+m], want[ci*sm.K()+m]
					if g != w {
						t.Fatalf("tile=%d candidate %d member %d: batch=%v per-graph=%v", tile, ci, m, g, w)
					}
				}
			}
		}
	}
}

// TestInferEnsembleBatch32MatchesInferEnsemble32 pins the float32 packed
// pass to the per-graph float32 pass bit for bit: the fast path's drift
// bound against float64 therefore carries over unchanged to fused tiles.
func TestInferEnsembleBatch32MatchesInferEnsemble32(t *testing.T) {
	models := newTestEnsemble(t, 3)
	sm, err := Stack(models)
	if err != nil {
		t.Fatal(err)
	}
	base := packBase()
	plan, err := NewPlan(base)
	if err != nil {
		t.Fatal(err)
	}
	graphs := packCandidates(base, packPlacements)

	want := make([]float64, len(graphs)*sm.K())
	ss := NewStackedScratch()
	for ci, g := range graphs {
		if err := sm.InferEnsemble32(g, plan, ss, want[ci*sm.K():(ci+1)*sm.K()]); err != nil {
			t.Fatal(err)
		}
	}
	pg, err := PackGraphs(graphs, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, len(graphs)*sm.K())
	if err := sm.InferEnsembleBatch32(pg, nil, got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("output %d: batch32=%v per-graph32=%v", i, got[i], want[i])
		}
	}
}

// TestInferEnsembleBatchNoHosts covers the query-only shape: candidates
// without host nodes pack and score as C copies of the shared base.
func TestInferEnsembleBatchNoHosts(t *testing.T) {
	models := newTestEnsemble(t, 2)
	sm, err := Stack(models)
	if err != nil {
		t.Fatal(err)
	}
	base := packBase()
	plan, err := NewPlan(base)
	if err != nil {
		t.Fatal(err)
	}
	graphs := []*Graph{base, base, base}
	pg, err := PackGraphs(graphs, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, len(graphs)*sm.K())
	if err := sm.InferEnsembleBatch(pg, nil, got); err != nil {
		t.Fatal(err)
	}
	want := make([]float64, sm.K())
	if err := sm.InferEnsemble(base, plan, nil, want); err != nil {
		t.Fatal(err)
	}
	for ci := range graphs {
		for m := 0; m < sm.K(); m++ {
			if got[ci*sm.K()+m] != want[m] {
				t.Fatalf("candidate %d member %d: %v != %v", ci, m, got[ci*sm.K()+m], want[m])
			}
		}
	}
}

// TestPackGraphsRejectsForeignGraphs checks the structural-sharing guard:
// graphs that merely equal the base by value (copied features) or break
// the op/host split are rejected, so mis-batched inference cannot happen
// silently.
func TestPackGraphsRejectsForeignGraphs(t *testing.T) {
	base := packBase()
	plan, err := NewPlan(base)
	if err != nil {
		t.Fatal(err)
	}
	graphs := packCandidates(base, packPlacements[:2])

	// A value-equal copy of an operator feature vector is not sharing.
	copied := packCandidates(base, packPlacements[2:3])[0]
	copied.Nodes[1].Feat = append([]float64(nil), copied.Nodes[1].Feat...)
	if _, err := PackGraphs([]*Graph{graphs[0], copied}, plan, nil); err == nil ||
		!strings.Contains(err.Error(), "share") {
		t.Fatalf("copied-feature graph packed without error (err=%v)", err)
	}

	// An operator node appended after the host section breaks the split.
	bad := packCandidates(base, packPlacements[:1])[0]
	bad.Nodes = append(bad.Nodes, Node{Kind: KindFilter, Feat: []float64{1, 2, 3}})
	if _, err := PackGraphs([]*Graph{bad}, plan, nil); err == nil {
		t.Fatal("op-after-host graph packed without error")
	}

	if _, err := PackGraphs(nil, plan, nil); err == nil {
		t.Fatal("empty pack accepted")
	}
}

// TestInferEnsembleBatchAllocs pins the steady-state packed pass (reused
// PackedGraphs and BatchScratch) to zero allocations.
func TestInferEnsembleBatchAllocs(t *testing.T) {
	models := newTestEnsemble(t, 3)
	sm, err := Stack(models)
	if err != nil {
		t.Fatal(err)
	}
	base := packBase()
	plan, err := NewPlan(base)
	if err != nil {
		t.Fatal(err)
	}
	graphs := packCandidates(base, packPlacements)
	var pg *PackedGraphs
	bs := NewBatchScratch()
	out := make([]float64, len(graphs)*sm.K())
	if pg, err = PackGraphs(graphs, plan, pg); err != nil {
		t.Fatal(err)
	}
	if err := sm.InferEnsembleBatch(pg, bs, out); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		var err error
		if pg, err = PackGraphs(graphs, plan, pg); err != nil {
			t.Fatal(err)
		}
		if err := sm.InferEnsembleBatch(pg, bs, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state pack+batch pass allocates %.1f times per run, want 0", allocs)
	}
}

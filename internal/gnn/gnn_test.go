package gnn

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"costream/internal/nn"
)

// testGraph builds a small joint graph:
//
//	source(0) -> filter(1) -> sink(2), hosts 3 and 4,
//	placement: source,filter -> host3; sink -> host4.
func testGraph(srcFeat float64) *Graph {
	return &Graph{
		Nodes: []Node{
			{Kind: KindSource, Feat: []float64{srcFeat, 0.5}},
			{Kind: KindFilter, Feat: []float64{0.2, 0.9, 0.1}},
			{Kind: KindSink, Feat: []float64{1}},
			{Kind: KindHost, Feat: []float64{0.5, 0.5, 0.5, 0.5}},
			{Kind: KindHost, Feat: []float64{1, 1, 1, 1}},
		},
		FlowEdges:  [][2]int{{0, 1}, {1, 2}},
		PlaceEdges: [][2]int{{0, 3}, {1, 3}, {2, 4}},
	}
}

func testDims() map[NodeKind]int {
	return map[NodeKind]int{
		KindSource: 2, KindFilter: 3, KindSink: 1, KindHost: 4,
		KindJoin: 2, KindAggregate: 2,
	}
}

func newTestModel(t *testing.T, traditional bool) *Model {
	t.Helper()
	cfg := DefaultConfig(testDims())
	cfg.Hidden = 8
	cfg.EncHidden, cfg.UpdHidden, cfg.OutHidden = 8, 8, 8
	cfg.Traditional = traditional
	m, err := New(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestForwardShapes(t *testing.T) {
	for _, trad := range []bool{false, true} {
		m := newTestModel(t, trad)
		tape := nn.NewTape()
		out, err := m.Forward(tape, testGraph(0.5))
		if err != nil {
			t.Fatalf("traditional=%v: %v", trad, err)
		}
		if len(out.Data) != 1 {
			t.Fatalf("output dim = %d, want 1", len(out.Data))
		}
		if math.IsNaN(out.Data[0]) || math.IsInf(out.Data[0], 0) {
			t.Fatalf("output = %v", out.Data[0])
		}
	}
}

func TestForwardDeterministic(t *testing.T) {
	m := newTestModel(t, false)
	t1, t2 := nn.NewTape(), nn.NewTape()
	o1, err := m.Forward(t1, testGraph(0.5))
	if err != nil {
		t.Fatal(err)
	}
	o2, err := m.Forward(t2, testGraph(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if o1.Data[0] != o2.Data[0] {
		t.Errorf("same input produced %v then %v", o1.Data[0], o2.Data[0])
	}
}

func TestInputSensitivity(t *testing.T) {
	m := newTestModel(t, false)
	t1, t2 := nn.NewTape(), nn.NewTape()
	o1, _ := m.Forward(t1, testGraph(0.1))
	o2, _ := m.Forward(t2, testGraph(0.9))
	if o1.Data[0] == o2.Data[0] {
		t.Error("changing source features did not change the prediction")
	}
}

func TestPlacementSensitivity(t *testing.T) {
	// Identical query, swapped host assignment -> different prediction.
	m := newTestModel(t, false)
	g1 := testGraph(0.5)
	g2 := testGraph(0.5)
	g2.PlaceEdges = [][2]int{{0, 4}, {1, 4}, {2, 3}}
	t1, t2 := nn.NewTape(), nn.NewTape()
	o1, _ := m.Forward(t1, g1)
	o2, _ := m.Forward(t2, g2)
	if o1.Data[0] == o2.Data[0] {
		t.Error("swapping placement did not change the prediction")
	}
}

func TestGradCheckThroughMessagePassing(t *testing.T) {
	m := newTestModel(t, false)
	g := testGraph(0.5)
	forward := func() float64 {
		tape := nn.NewTape()
		out, err := m.Forward(tape, g)
		if err != nil {
			t.Fatal(err)
		}
		return nn.MSLELoss(tape, out, 100).Data[0]
	}
	m.ZeroGrad()
	tape := nn.NewTape()
	out, err := m.Forward(tape, g)
	if err != nil {
		t.Fatal(err)
	}
	loss := nn.MSLELoss(tape, out, 100)
	tape.Backward(loss)

	params, grads := m.Params()
	const h = 1e-6
	checked, nonzero := 0, 0
	for k, p := range params {
		step := len(p)/5 + 1
		for i := 0; i < len(p); i += step {
			orig := p[i]
			p[i] = orig + h
			lp := forward()
			p[i] = orig - h
			lm := forward()
			p[i] = orig
			want := (lp - lm) / (2 * h)
			got := grads[k][i]
			if math.Abs(got-want) > 1e-3*(1+math.Abs(want)) {
				t.Errorf("param %d[%d]: grad %v, want %v", k, i, got, want)
			}
			checked++
			if got != 0 {
				nonzero++
			}
		}
	}
	if checked < 20 || nonzero == 0 {
		t.Fatalf("checked %d gradients, %d nonzero", checked, nonzero)
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	// Teach the model that cost ~ srcFeat * 1000: four graphs, target
	// proportional to feature.
	m := newTestModel(t, false)
	params, grads := m.Params()
	opt := nn.NewAdam(0.005, params, grads)
	graphs := []*Graph{testGraph(0.1), testGraph(0.4), testGraph(0.7), testGraph(1.0)}
	targets := []float64{100, 400, 700, 1000}
	lossAt := func() float64 {
		var sum float64
		for i, g := range graphs {
			tape := nn.NewTape()
			out, _ := m.Forward(tape, g)
			sum += nn.MSLELoss(tape, out, targets[i]).Data[0]
		}
		return sum / float64(len(graphs))
	}
	before := lossAt()
	for epoch := 0; epoch < 200; epoch++ {
		opt.ZeroGrads()
		for i, g := range graphs {
			tape := nn.NewTape()
			out, _ := m.Forward(tape, g)
			tape.Backward(nn.MSLELoss(tape, out, targets[i]))
		}
		opt.Step()
		opt.ZeroGrads()
	}
	after := lossAt()
	if after >= before/10 {
		t.Errorf("loss %v -> %v; want at least 10x reduction", before, after)
	}
}

func TestValidateRejectsBadGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
	}{
		{"empty", &Graph{}},
		{"flow edge out of range", &Graph{
			Nodes:     []Node{{Kind: KindSource, Feat: []float64{1, 1}}},
			FlowEdges: [][2]int{{0, 5}},
		}},
		{"flow edge to host", &Graph{
			Nodes: []Node{
				{Kind: KindSource, Feat: []float64{1, 1}},
				{Kind: KindHost, Feat: []float64{1, 1, 1, 1}},
			},
			FlowEdges: [][2]int{{0, 1}},
		}},
		{"placement to non-host", &Graph{
			Nodes: []Node{
				{Kind: KindSource, Feat: []float64{1, 1}},
				{Kind: KindFilter, Feat: []float64{1, 1, 1}},
			},
			PlaceEdges: [][2]int{{0, 1}},
		}},
		{"placement from host", &Graph{
			Nodes: []Node{
				{Kind: KindHost, Feat: []float64{1, 1, 1, 1}},
				{Kind: KindHost, Feat: []float64{1, 1, 1, 1}},
			},
			PlaceEdges: [][2]int{{0, 1}},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.g.Validate(); err == nil {
				t.Error("Validate accepted bad graph")
			}
		})
	}
}

func TestForwardRejectsWrongFeatureDim(t *testing.T) {
	m := newTestModel(t, false)
	g := testGraph(0.5)
	g.Nodes[0].Feat = []float64{1} // encoder expects 2
	tape := nn.NewTape()
	if _, err := m.Forward(tape, g); err == nil {
		t.Error("Forward accepted wrong feature dimension")
	}
}

func TestCyclicFlowRejected(t *testing.T) {
	m := newTestModel(t, false)
	g := testGraph(0.5)
	g.FlowEdges = append(g.FlowEdges, [2]int{2, 0})
	tape := nn.NewTape()
	if _, err := m.Forward(tape, g); err == nil {
		t.Error("Forward accepted cyclic flow graph")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	m := newTestModel(t, false)
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var m2 Model
	if err := json.Unmarshal(data, &m2); err != nil {
		t.Fatal(err)
	}
	g := testGraph(0.33)
	t1, t2 := nn.NewTape(), nn.NewTape()
	o1, err := m.Forward(t1, g)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := m2.Forward(t2, g)
	if err != nil {
		t.Fatal(err)
	}
	if o1.Data[0] != o2.Data[0] {
		t.Errorf("round trip changed prediction: %v vs %v", o1.Data[0], o2.Data[0])
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Hidden: 0, FeatDims: testDims()}, 1); err == nil {
		t.Error("zero hidden accepted")
	}
	if _, err := New(Config{Hidden: 8}, 1); err == nil {
		t.Error("missing feature dims accepted")
	}
}

func TestDifferentSeedsDifferentModels(t *testing.T) {
	cfg := DefaultConfig(testDims())
	cfg.Hidden, cfg.EncHidden, cfg.UpdHidden, cfg.OutHidden = 8, 8, 8, 8
	m1, _ := New(cfg, 1)
	m2, _ := New(cfg, 2)
	g := testGraph(0.5)
	t1, t2 := nn.NewTape(), nn.NewTape()
	o1, _ := m1.Forward(t1, g)
	o2, _ := m2.Forward(t2, g)
	if o1.Data[0] == o2.Data[0] {
		t.Error("different seeds produced identical predictions")
	}
}

func TestCoLocationMessages(t *testing.T) {
	// Moving the filter from host 3 to host 4 changes host 3's incoming
	// message set (co-location effect) and thus the prediction.
	m := newTestModel(t, false)
	g1 := testGraph(0.5)
	g2 := testGraph(0.5)
	g2.PlaceEdges = [][2]int{{0, 3}, {1, 4}, {2, 4}}
	t1, t2 := nn.NewTape(), nn.NewTape()
	o1, _ := m.Forward(t1, g1)
	o2, _ := m.Forward(t2, g2)
	if o1.Data[0] == o2.Data[0] {
		t.Error("co-location change did not affect prediction")
	}
}

func TestNumParamsAndRandomizedForward(t *testing.T) {
	m := newTestModel(t, false)
	if m.NumParams() <= 0 {
		t.Fatal("NumParams must be positive")
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20; i++ {
		g := testGraph(rng.Float64())
		tape := nn.NewTape()
		out, err := m.Forward(tape, g)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(out.Data[0]) {
			t.Fatal("NaN prediction")
		}
	}
}

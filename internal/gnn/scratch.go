package gnn

import "costream/internal/nn"

// Scratch holds the reusable per-worker buffers of a directed forward
// pass: the per-node hidden-state slices of the three phases, the
// per-host child lists of phase 1 and the child buffer of phase 3. One
// Scratch serves one goroutine; training workers keep one alongside their
// tape so the steady-state forward pass allocates nothing.
//
// A nil Scratch is accepted by ForwardPlanned and allocates fresh buffers
// for that call.
type Scratch struct {
	hidden, next, after2, final []*nn.Node
	kids                        []*nn.Node   // phase-3 child buffer
	one                         [1]*nn.Node  // phase-2 single-child buffer
	hostOrder                   []int        // host indices in first-seen order, then sorted
	hostKids                    [][]*nn.Node // per node index: phase-1 child lists
}

// NewScratch returns an empty scratch; its buffers grow on first use and
// are reused afterwards.
func NewScratch() *Scratch { return &Scratch{} }

// grow ensures every per-node buffer covers n nodes and resets the
// per-call state.
func (s *Scratch) grow(n int) {
	if cap(s.hidden) < n {
		s.hidden = make([]*nn.Node, n)
		s.next = make([]*nn.Node, n)
		s.after2 = make([]*nn.Node, n)
		s.final = make([]*nn.Node, n)
		s.hostKids = make([][]*nn.Node, n)
	}
	s.hostOrder = s.hostOrder[:0]
	s.kids = s.kids[:0]
}

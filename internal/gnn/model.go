package gnn

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"slices"

	"costream/internal/nn"
)

// Config describes a model architecture.
type Config struct {
	// Hidden is the hidden state width.
	Hidden int
	// FeatDims maps node kind -> input feature dimension.
	FeatDims map[NodeKind]int
	// EncHidden and UpdHidden are the hidden widths of the encoder and
	// update MLPs (one hidden layer each); OutHidden of the readout MLP.
	EncHidden, UpdHidden, OutHidden int
	// Traditional selects the ablation message passing scheme of Exp 7b:
	// k simultaneous undirected neighbor-sum updates instead of the
	// paper's three ordered directed phases.
	Traditional bool
	// TraditionalRounds is the number of undirected rounds (default 3).
	TraditionalRounds int
}

// DefaultConfig returns the architecture used across the experiments.
func DefaultConfig(featDims map[NodeKind]int) Config {
	return Config{
		Hidden:    48,
		FeatDims:  featDims,
		EncHidden: 64, UpdHidden: 64, OutHidden: 48,
		TraditionalRounds: 3,
	}
}

// Model is a COSTREAM GNN predicting one scalar cost (in the head's output
// space: log1p cost for regression heads, a logit for classification).
type Model struct {
	cfg Config
	enc map[NodeKind]*nn.MLP // features -> hidden
	upd map[NodeKind]*nn.MLP // concat(sum children, own) -> hidden
	out *nn.MLP              // hidden -> 1
}

// New constructs a model with freshly initialized weights.
func New(cfg Config, seed int64) (*Model, error) {
	if cfg.Hidden <= 0 {
		return nil, fmt.Errorf("gnn: hidden width must be positive")
	}
	if len(cfg.FeatDims) == 0 {
		return nil, fmt.Errorf("gnn: no feature dimensions configured")
	}
	if cfg.TraditionalRounds <= 0 {
		cfg.TraditionalRounds = 3
	}
	rng := rand.New(rand.NewSource(seed))
	m := &Model{
		cfg: cfg,
		enc: make(map[NodeKind]*nn.MLP),
		upd: make(map[NodeKind]*nn.MLP),
	}
	for _, k := range AllKinds() {
		d, ok := cfg.FeatDims[k]
		if !ok {
			continue
		}
		m.enc[k] = nn.NewMLP(rng, d, cfg.EncHidden, cfg.Hidden)
		m.upd[k] = nn.NewMLP(rng, 2*cfg.Hidden, cfg.UpdHidden, cfg.Hidden)
	}
	m.out = nn.NewMLP(rng, cfg.Hidden, cfg.OutHidden, 1)
	return m, nil
}

// Config returns the model's architecture configuration.
func (m *Model) Config() Config { return m.cfg }

// Params returns all parameter/gradient pairs for the optimizer, in a
// deterministic order.
func (m *Model) Params() (params, grads [][]float64) {
	for _, k := range AllKinds() {
		if e, ok := m.enc[k]; ok {
			p, g := e.Params()
			params, grads = append(params, p...), append(grads, g...)
		}
		if u, ok := m.upd[k]; ok {
			p, g := u.Params()
			params, grads = append(params, p...), append(grads, g...)
		}
	}
	p, g := m.out.Params()
	return append(params, p...), append(grads, g...)
}

// ZeroGrad clears all gradient buffers.
func (m *Model) ZeroGrad() {
	for _, e := range m.enc {
		e.ZeroGrad()
	}
	for _, u := range m.upd {
		u.ZeroGrad()
	}
	m.out.ZeroGrad()
}

// GradShadow returns a model that shares this model's weight slices but
// owns private zeroed gradient buffers. Shadows let data-parallel
// training run concurrent backward passes — one shadow per batch slot —
// without racing on the gradient accumulators; Params on the shadow
// yields the shared weights paired with the shadow's own gradients, in
// the same deterministic order as the original.
func (m *Model) GradShadow() *Model {
	s := &Model{
		cfg: m.cfg,
		enc: make(map[NodeKind]*nn.MLP, len(m.enc)),
		upd: make(map[NodeKind]*nn.MLP, len(m.upd)),
		out: m.out.GradShadow(),
	}
	for k, e := range m.enc {
		s.enc[k] = e.GradShadow()
	}
	for k, u := range m.upd {
		s.upd[k] = u.GradShadow()
	}
	return s
}

// NumParams returns the total scalar parameter count.
func (m *Model) NumParams() int {
	n := m.out.NumParams()
	for _, e := range m.enc {
		n += e.NumParams()
	}
	for _, u := range m.upd {
		n += u.NumParams()
	}
	return n
}

// Forward records the full forward pass of the graph on the tape and
// returns the scalar output node. It validates the graph and derives its
// flow structure on the fly; training loops that evaluate the same graph
// every epoch should precompute a Plan once and call ForwardPlanned.
func (m *Model) Forward(t *nn.Tape, g *Graph) (*nn.Node, error) {
	plan, err := NewPlan(g)
	if err != nil {
		return nil, err
	}
	return m.ForwardPlanned(t, g, plan, nil)
}

// ForwardPlanned is Forward with a precomputed Plan and an optional
// reusable Scratch. The graph is trusted to be structurally valid and
// consistent with the plan (NewPlan validated it); only the per-node
// encoder checks remain. With a per-worker tape and scratch, the
// steady-state pass performs zero heap allocations.
func (m *Model) ForwardPlanned(t *nn.Tape, g *Graph, plan *Plan, s *Scratch) (*nn.Node, error) {
	if s == nil {
		s = NewScratch()
	}
	n := len(g.Nodes)
	s.grow(n)
	hidden := s.hidden[:n]
	for i, nd := range g.Nodes {
		enc, ok := m.enc[nd.Kind]
		if !ok {
			return nil, fmt.Errorf("gnn: no encoder for kind %v", nd.Kind)
		}
		if len(nd.Feat) != enc.InDim() {
			return nil, fmt.Errorf("gnn: node %d (%v) has %d features, encoder wants %d",
				i, nd.Kind, len(nd.Feat), enc.InDim())
		}
		hidden[i] = enc.Apply(t, t.Const(nd.Feat))
	}
	if m.cfg.Traditional {
		var err error
		hidden, err = m.traditionalPassing(t, g, hidden)
		if err != nil {
			return nil, err
		}
	} else {
		hidden = m.directedPassing(t, g, hidden, plan, s)
	}
	readout := t.Sum(hidden...)
	return m.out.Apply(t, readout), nil
}

// update applies the node-type specific update MLP to
// concat(sum(children), own state). children must be non-empty; the slice
// may be a reused scratch buffer (the tape copies it).
func (m *Model) update(t *nn.Tape, kind NodeKind, children []*nn.Node, own *nn.Node) *nn.Node {
	agg := t.Sum(children...)
	return m.upd[kind].Apply(t, t.Concat2(agg, own))
}

// directedPassing implements the paper's three ordered phases.
func (m *Model) directedPassing(t *nn.Tape, g *Graph, h []*nn.Node, plan *Plan, s *Scratch) []*nn.Node {
	// Phase 1: operators -> hardware. Hosts learn the computational
	// requirements of the operators placed on them (co-location sends
	// multiple messages to the same host).
	for _, e := range g.PlaceEdges {
		if len(s.hostKids[e[1]]) == 0 {
			s.hostOrder = append(s.hostOrder, e[1])
		}
		s.hostKids[e[1]] = append(s.hostKids[e[1]], h[e[0]])
	}
	slices.Sort(s.hostOrder)
	next := s.next[:len(h)]
	copy(next, h)
	// Hosts are updated in ascending index order: while their new states
	// are order-independent, the tape-recording order determines gradient
	// accumulation order, and training must be bit-reproducible.
	for _, hostIdx := range s.hostOrder {
		next[hostIdx] = m.update(t, KindHost, s.hostKids[hostIdx], h[hostIdx])
		s.hostKids[hostIdx] = s.hostKids[hostIdx][:0]
	}

	// Phase 2: hardware -> operators. Operators learn the resources they
	// are placed on.
	after2 := s.after2[:len(next)]
	copy(after2, next)
	for _, e := range g.PlaceEdges {
		opIdx, hostIdx := e[0], e[1]
		s.one[0] = next[hostIdx]
		after2[opIdx] = m.update(t, g.Nodes[opIdx].Kind, s.one[:], next[opIdx])
	}

	// Phase 3: sources -> ... -> sink along the data flow, merging
	// source characteristics with operator and hardware information.
	final := s.final[:len(after2)]
	copy(final, after2)
	for _, v := range plan.order {
		parents := plan.ups[v]
		if len(parents) == 0 {
			continue // sources send but do not receive in this phase
		}
		children := s.kids[:0]
		for _, p := range parents {
			children = append(children, final[p])
		}
		s.kids = children[:0]
		final[v] = m.update(t, g.Nodes[v].Kind, children, after2[v])
	}
	return final
}

// traditionalPassing is the Exp 7b ablation: in each round every node is
// updated with the sum of all its neighbors' states, regardless of node
// type or edge direction.
func (m *Model) traditionalPassing(t *nn.Tape, g *Graph, h []*nn.Node) ([]*nn.Node, error) {
	n := len(g.Nodes)
	neighbors := make([][]int, n)
	addEdge := func(a, b int) {
		neighbors[a] = append(neighbors[a], b)
		neighbors[b] = append(neighbors[b], a)
	}
	for _, e := range g.FlowEdges {
		addEdge(e[0], e[1])
	}
	for _, e := range g.PlaceEdges {
		addEdge(e[0], e[1])
	}
	cur := h
	for round := 0; round < m.cfg.TraditionalRounds; round++ {
		next := make([]*nn.Node, n)
		for v := 0; v < n; v++ {
			if len(neighbors[v]) == 0 {
				next[v] = cur[v]
				continue
			}
			children := make([]*nn.Node, len(neighbors[v]))
			for i, u := range neighbors[v] {
				children[i] = cur[u]
			}
			next[v] = m.update(t, g.Nodes[v].Kind, children, cur[v])
		}
		cur = next
	}
	return cur, nil
}

// modelJSON is the serialized form of a Model.
type modelJSON struct {
	Cfg      configJSON         `json:"config"`
	Encoders map[string]*nn.MLP `json:"encoders"`
	Updaters map[string]*nn.MLP `json:"updaters"`
	Out      *nn.MLP            `json:"out"`
}

type configJSON struct {
	Hidden            int            `json:"hidden"`
	FeatDims          map[string]int `json:"feat_dims"`
	EncHidden         int            `json:"enc_hidden"`
	UpdHidden         int            `json:"upd_hidden"`
	OutHidden         int            `json:"out_hidden"`
	Traditional       bool           `json:"traditional"`
	TraditionalRounds int            `json:"traditional_rounds"`
}

func kindFromName(s string) (NodeKind, bool) {
	for _, k := range AllKinds() {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// MarshalJSON encodes the model's configuration and weights.
func (m *Model) MarshalJSON() ([]byte, error) {
	j := modelJSON{
		Cfg: configJSON{
			Hidden:    m.cfg.Hidden,
			FeatDims:  map[string]int{},
			EncHidden: m.cfg.EncHidden, UpdHidden: m.cfg.UpdHidden, OutHidden: m.cfg.OutHidden,
			Traditional: m.cfg.Traditional, TraditionalRounds: m.cfg.TraditionalRounds,
		},
		Encoders: map[string]*nn.MLP{},
		Updaters: map[string]*nn.MLP{},
		Out:      m.out,
	}
	for k, d := range m.cfg.FeatDims {
		j.Cfg.FeatDims[k.String()] = d
	}
	for k, e := range m.enc {
		j.Encoders[k.String()] = e
	}
	for k, u := range m.upd {
		j.Updaters[k.String()] = u
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes a model.
func (m *Model) UnmarshalJSON(data []byte) error {
	var j modelJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	m.cfg = Config{
		Hidden:    j.Cfg.Hidden,
		FeatDims:  map[NodeKind]int{},
		EncHidden: j.Cfg.EncHidden, UpdHidden: j.Cfg.UpdHidden, OutHidden: j.Cfg.OutHidden,
		Traditional: j.Cfg.Traditional, TraditionalRounds: j.Cfg.TraditionalRounds,
	}
	for name, d := range j.Cfg.FeatDims {
		k, ok := kindFromName(name)
		if !ok {
			return fmt.Errorf("gnn: unknown node kind %q", name)
		}
		m.cfg.FeatDims[k] = d
	}
	m.enc = map[NodeKind]*nn.MLP{}
	m.upd = map[NodeKind]*nn.MLP{}
	for name, e := range j.Encoders {
		k, ok := kindFromName(name)
		if !ok {
			return fmt.Errorf("gnn: unknown node kind %q", name)
		}
		m.enc[k] = e
	}
	for name, u := range j.Updaters {
		k, ok := kindFromName(name)
		if !ok {
			return fmt.Errorf("gnn: unknown node kind %q", name)
		}
		m.upd[k] = u
	}
	if j.Out == nil {
		return fmt.Errorf("gnn: missing readout MLP")
	}
	m.out = j.Out
	return nil
}

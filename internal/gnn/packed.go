package gnn

import (
	"fmt"

	"costream/internal/nn"
)

// PackedGraphs is the packed multi-graph form of one scoring round's
// candidate tile: C candidate graphs that share the operator-node prefix,
// the flow edges and the message-passing Plan (as produced by
// core.BatchFeaturizer), reduced to flat index tables so a StackedModel
// can advance all C candidates × k members per kernel call instead of one
// graph at a time. Host nodes — the only per-candidate part — are
// flattened into "slots": slot s belongs to candidate c when
// hostOff[c] <= s < hostOff[c+1], in the candidate's node-index order.
//
// A PackedGraphs is reusable: Pack with the same receiver re-fills the
// tables without reallocating once the capacities have grown.
type PackedGraphs struct {
	base *Graph // graphs[0]; owner of the shared operator prefix
	plan *Plan
	c    int // number of candidates
	nOps int // operator nodes shared by every candidate

	opsByKind [numKinds][]int // operator node indices grouped by kind

	hostOff  []int       // len c+1: per-candidate host-slot ranges
	hostFeat [][]float64 // per-slot host feature vectors (read-only refs)
	kidsOff  []int       // len hostOff[c]+1: per-slot child-list ranges
	kids     []int       // flattened child operator indices, edge order
	kidCur   []int       // fill cursors (scratch for the CSR build)
	opHost   []int       // c×nOps: packed host slot per (cand, op), -1 none
}

// C returns the number of packed candidates.
func (pg *PackedGraphs) C() int { return pg.c }

// NumOps returns the number of shared operator nodes.
func (pg *PackedGraphs) NumOps() int { return pg.nOps }

func growInt(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

func growFeat(buf [][]float64, n int) [][]float64 {
	if cap(buf) < n {
		return make([][]float64, n)
	}
	return buf[:n]
}

// PackGraphs packs candidate graphs sharing one operator prefix and plan
// into pg (nil allocates a fresh one) and returns it. Sharing is enforced
// structurally: every graph must reference the identical operator feature
// slices and flow-edge slice as graphs[0] (how BatchFeaturizer builds
// candidate graphs), and every node past the operator prefix must be a
// host. Violations return an error so callers can fall back to per-graph
// inference rather than silently mis-scoring.
func PackGraphs(graphs []*Graph, plan *Plan, pg *PackedGraphs) (*PackedGraphs, error) {
	if len(graphs) == 0 {
		return nil, fmt.Errorf("gnn: packing zero graphs")
	}
	if plan == nil {
		return nil, fmt.Errorf("gnn: packing requires a plan")
	}
	if pg == nil {
		pg = &PackedGraphs{}
	}
	base := graphs[0]
	nOps := len(base.Nodes)
	for i, nd := range base.Nodes {
		if nd.Kind == KindHost {
			nOps = i
			break
		}
	}
	if nOps == 0 {
		return nil, fmt.Errorf("gnn: packing graphs without operator nodes")
	}
	pg.base, pg.plan, pg.c, pg.nOps = base, plan, len(graphs), nOps
	for kind := range pg.opsByKind {
		pg.opsByKind[kind] = pg.opsByKind[kind][:0]
	}
	for i, nd := range base.Nodes[:nOps] {
		pg.opsByKind[nd.Kind] = append(pg.opsByKind[nd.Kind], i)
	}

	pg.hostOff = growInt(pg.hostOff, len(graphs)+1)
	pg.hostOff[0] = 0
	for ci, g := range graphs {
		if len(g.Nodes) < nOps {
			return nil, fmt.Errorf("gnn: candidate %d has %d nodes, shared prefix needs %d", ci, len(g.Nodes), nOps)
		}
		for i := 0; i < nOps; i++ {
			nd, bd := &g.Nodes[i], &base.Nodes[i]
			if nd.Kind != bd.Kind || len(nd.Feat) != len(bd.Feat) ||
				(len(nd.Feat) > 0 && &nd.Feat[0] != &bd.Feat[0]) {
				return nil, fmt.Errorf("gnn: candidate %d does not share operator node %d with the tile base", ci, i)
			}
		}
		for i := nOps; i < len(g.Nodes); i++ {
			if g.Nodes[i].Kind != KindHost {
				return nil, fmt.Errorf("gnn: candidate %d node %d is %v, want host", ci, i, g.Nodes[i].Kind)
			}
		}
		if len(g.FlowEdges) != len(base.FlowEdges) ||
			(len(g.FlowEdges) > 0 && &g.FlowEdges[0] != &base.FlowEdges[0]) {
			return nil, fmt.Errorf("gnn: candidate %d does not share the tile base flow edges", ci)
		}
		pg.hostOff[ci+1] = pg.hostOff[ci] + len(g.Nodes) - nOps
	}

	hTot := pg.hostOff[len(graphs)]
	pg.hostFeat = growFeat(pg.hostFeat, hTot)
	pg.opHost = growInt(pg.opHost, len(graphs)*nOps)
	for i := range pg.opHost {
		pg.opHost[i] = -1
	}
	pg.kidsOff = growInt(pg.kidsOff, hTot+1)
	for i := range pg.kidsOff {
		pg.kidsOff[i] = 0
	}
	// CSR build of the per-slot child-operator lists: count, prefix-sum,
	// fill — preserving placement-edge order per slot, which is the child
	// summation order of the per-graph pass (bit-identity depends on it).
	totalKids := 0
	for ci, g := range graphs {
		off := pg.hostOff[ci]
		for s := off; s < pg.hostOff[ci+1]; s++ {
			pg.hostFeat[s] = g.Nodes[nOps+s-off].Feat
		}
		for _, e := range g.PlaceEdges {
			op, hn := e[0], e[1]
			if op < 0 || op >= nOps || hn < nOps || hn >= len(g.Nodes) {
				return nil, fmt.Errorf("gnn: candidate %d has placement edge (%d,%d) outside the op/host split at %d", ci, op, hn, nOps)
			}
			pg.kidsOff[off+hn-nOps+1]++
			totalKids++
		}
	}
	for s := 0; s < hTot; s++ {
		pg.kidsOff[s+1] += pg.kidsOff[s]
	}
	pg.kids = growInt(pg.kids, totalKids)
	pg.kidCur = growInt(pg.kidCur, hTot)
	for s := 0; s < hTot; s++ {
		pg.kidCur[s] = pg.kidsOff[s]
	}
	for ci, g := range graphs {
		off := pg.hostOff[ci]
		for _, e := range g.PlaceEdges {
			slot := off + e[1] - nOps
			pg.kids[pg.kidCur[slot]] = e[0]
			pg.kidCur[slot]++
			pg.opHost[ci*nOps+e[0]] = slot
		}
	}
	return pg, nil
}

// BatchScratch holds the reusable buffers of a packed multi-candidate
// forward pass: the shared operator encodings, the packed host planes,
// the per-candidate operator activation planes and the gather/concat
// staging blocks, in float64 and float32. One BatchScratch serves one
// goroutine; a nil scratch is accepted and allocates fresh buffers.
type BatchScratch struct {
	encOps   []float64 // nOps × (k·H), shared across candidates
	hostEnc  []float64 // Σhosts × (k·H) encoder outputs
	hostNext []float64 // Σhosts × (k·H) phase-1 (= final) host states
	after2   []float64 // C × nOps × (k·H) phase-2 operator states
	final    []float64 // C × nOps × (k·H) phase-3 operator states
	gather   []float64 // rows × featDim encoder inputs
	cat      []float64 // rows × (k·2H) update inputs
	tmp      []float64 // rows × (k·H) kernel outputs
	agg      []float64 // C × (k·H) readout accumulators

	encOps32, hostEnc32, hostNext32, after232 []float32
	final32, gather32, cat32, tmp32, agg32    []float32

	dense nn.DenseScratch
}

// NewBatchScratch returns an empty scratch; its buffers grow on first use
// and are reused afterwards.
func NewBatchScratch() *BatchScratch { return &BatchScratch{} }

// checkBatch runs the per-node encoder checks of a packed pass (the
// structural validation happened in PackGraphs).
func (sm *StackedModel) checkBatch(pg *PackedGraphs) error {
	for kind := range pg.opsByKind {
		idxs := pg.opsByKind[kind]
		if len(idxs) == 0 {
			continue
		}
		enc, ok := sm.enc[NodeKind(kind)]
		if !ok {
			return fmt.Errorf("gnn: no encoder for kind %v", NodeKind(kind))
		}
		for _, idx := range idxs {
			if len(pg.base.Nodes[idx].Feat) != enc.InDim() {
				return fmt.Errorf("gnn: node %d (%v) has %d features, encoder wants %d",
					idx, NodeKind(kind), len(pg.base.Nodes[idx].Feat), enc.InDim())
			}
		}
	}
	if hTot := pg.hostOff[pg.c]; hTot > 0 {
		enc, ok := sm.enc[KindHost]
		if !ok {
			return fmt.Errorf("gnn: no encoder for kind %v", KindHost)
		}
		for s, f := range pg.hostFeat[:hTot] {
			if len(f) != enc.InDim() {
				return fmt.Errorf("gnn: host slot %d has %d features, encoder wants %d",
					s, len(f), enc.InDim())
			}
		}
	}
	return nil
}

// InferEnsembleBatch runs one forward pass for all C packed candidates and
// all k members at once, writing the raw member outputs candidate-major
// into out (len C·k: candidate c's member m lands at out[c·k+m]). Every
// value is bit-identical to InferEnsemble on the candidate's own graph —
// and hence to Model.InferPlanned per member: all kernels are
// row-independent with a fixed per-row accumulation order, so batching
// rows across candidates cannot change any result. Cross-candidate fusion
// turns the sequential phase-3 flow walk from nOps·C single-row kernel
// calls into nOps calls of C rows each — the main win for search rounds.
func (sm *StackedModel) InferEnsembleBatch(pg *PackedGraphs, s *BatchScratch, out []float64) error {
	c, nOps := pg.c, pg.nOps
	if len(out) != c*sm.k {
		return fmt.Errorf("gnn: output buffer holds %d values, want %d candidates x %d members", len(out), c, sm.k)
	}
	if err := sm.checkBatch(pg); err != nil {
		return err
	}
	if s == nil {
		s = NewBatchScratch()
	}
	H := sm.cfg.Hidden
	kH := sm.k * H
	k2H := sm.k * 2 * H
	hTot := pg.hostOff[c]

	// Encode the shared operator prefix once for every candidate, one
	// matrix-matrix pass per node kind (features shared across members).
	s.encOps = grow64(s.encOps, nOps*kH)
	for kind := range pg.opsByKind {
		idxs := pg.opsByKind[kind]
		if len(idxs) == 0 {
			continue
		}
		enc := sm.enc[NodeKind(kind)]
		in := enc.InDim()
		s.gather = grow64(s.gather, len(idxs)*in)
		for r, idx := range idxs {
			copy(s.gather[r*in:(r+1)*in], pg.base.Nodes[idx].Feat)
		}
		s.tmp = grow64(s.tmp, len(idxs)*kH)
		enc.ForwardShared(s.tmp, s.gather, len(idxs), &s.dense)
		for r, idx := range idxs {
			copy(s.encOps[idx*kH:(idx+1)*kH], s.tmp[r*kH:(r+1)*kH])
		}
	}

	// Encode all host slots of the tile and run phase 1 (operators ->
	// hardware) over every slot of every candidate in one kernel call: a
	// host's phase-1 state is also its final state (phases 2 and 3 only
	// write operators).
	if hTot > 0 {
		enc := sm.enc[KindHost]
		in := enc.InDim()
		s.gather = grow64(s.gather, hTot*in)
		for slot, f := range pg.hostFeat[:hTot] {
			copy(s.gather[slot*in:(slot+1)*in], f)
		}
		s.hostEnc = grow64(s.hostEnc, hTot*kH)
		enc.ForwardShared(s.hostEnc, s.gather, hTot, &s.dense)

		s.cat = grow64(s.cat, hTot*k2H)
		for slot := 0; slot < hTot; slot++ {
			kids := pg.kids[pg.kidsOff[slot]:pg.kidsOff[slot+1]]
			catRow(s.cat[slot*k2H:(slot+1)*k2H], kids, slot, sm.k, H, s.encOps, s.hostEnc)
		}
		s.hostNext = grow64(s.hostNext, hTot*kH)
		sm.upd[KindHost].ForwardBlocks(s.hostNext, s.cat, hTot, &s.dense)
	}

	// Phase 2 (hardware -> operators), batched per operator kind across
	// all candidates. Operators without a placement edge keep their
	// encoder state, so the plane starts as a per-candidate broadcast of
	// the shared encodings.
	s.after2 = grow64(s.after2, c*nOps*kH)
	for ci := 0; ci < c; ci++ {
		copy(s.after2[ci*nOps*kH:(ci+1)*nOps*kH], s.encOps[:nOps*kH])
	}
	if hTot > 0 {
		var kidBuf [1]int
		for kind := range pg.opsByKind {
			idxs := pg.opsByKind[kind]
			if len(idxs) == 0 {
				continue
			}
			rows := 0
			for ci := 0; ci < c; ci++ {
				for _, v := range idxs {
					if pg.opHost[ci*nOps+v] >= 0 {
						rows++
					}
				}
			}
			if rows == 0 {
				continue
			}
			s.cat = grow64(s.cat, rows*k2H)
			r := 0
			for ci := 0; ci < c; ci++ {
				for _, v := range idxs {
					slot := pg.opHost[ci*nOps+v]
					if slot < 0 {
						continue
					}
					kidBuf[0] = slot
					catRow(s.cat[r*k2H:(r+1)*k2H], kidBuf[:], v, sm.k, H, s.hostNext, s.encOps)
					r++
				}
			}
			s.tmp = grow64(s.tmp, rows*kH)
			sm.upd[NodeKind(kind)].ForwardBlocks(s.tmp, s.cat, rows, &s.dense)
			r = 0
			for ci := 0; ci < c; ci++ {
				for _, v := range idxs {
					if pg.opHost[ci*nOps+v] < 0 {
						continue
					}
					copy(s.after2[(ci*nOps+v)*kH:(ci*nOps+v+1)*kH], s.tmp[r*kH:(r+1)*kH])
					r++
				}
			}
		}
	}

	// Phase 3 (sources -> ... -> sink): inherently sequential along the
	// flow order, but each step advances all C candidates x k members in
	// one kernel call of C rows.
	s.final = grow64(s.final, c*nOps*kH)
	copy(s.final, s.after2[:c*nOps*kH])
	s.cat = grow64(s.cat, max(len(s.cat), c*k2H))
	s.tmp = grow64(s.tmp, max(len(s.tmp), c*kH))
	for _, v := range pg.plan.order {
		parents := pg.plan.ups[v]
		if len(parents) == 0 {
			continue // sources send but do not receive in this phase
		}
		for ci := 0; ci < c; ci++ {
			plane := ci * nOps * kH
			catRow(s.cat[ci*k2H:(ci+1)*k2H], parents, v, sm.k, H,
				s.final[plane:plane+nOps*kH], s.after2[plane:plane+nOps*kH])
		}
		sm.upd[pg.base.Nodes[v].Kind].ForwardBlocks(s.tmp[:c*kH], s.cat[:c*k2H], c, &s.dense)
		for ci := 0; ci < c; ci++ {
			copy(s.final[(ci*nOps+v)*kH:(ci*nOps+v+1)*kH], s.tmp[ci*kH:(ci+1)*kH])
		}
	}

	// Readout: per candidate, the per-member sum over node states in node
	// order — operators first, then the candidate's hosts in slot order
	// (their first-use node order) — then one stacked output pass of C
	// rows.
	s.agg = grow64(s.agg, c*kH)
	for ci := 0; ci < c; ci++ {
		agg := s.agg[ci*kH : (ci+1)*kH]
		fin := s.final[ci*nOps*kH : (ci+1)*nOps*kH]
		copy(agg, fin[:kH])
		for v := 1; v < nOps; v++ {
			blk := fin[v*kH : (v+1)*kH]
			for i, x := range blk {
				agg[i] += x
			}
		}
		for slot := pg.hostOff[ci]; slot < pg.hostOff[ci+1]; slot++ {
			blk := s.hostNext[slot*kH : (slot+1)*kH]
			for i, x := range blk {
				agg[i] += x
			}
		}
	}
	s.tmp = grow64(s.tmp, max(len(s.tmp), c*sm.k))
	sm.out.ForwardBlocks(s.tmp[:c*sm.k], s.agg[:c*kH], c, &s.dense)
	copy(out, s.tmp[:c*sm.k])
	return nil
}

// InferEnsembleBatch32 is InferEnsembleBatch on the float32 fast path:
// same kernel structure and row batching, float32 weights and
// activations. It is bit-identical to per-graph InferEnsemble32 (the
// float32 kernels are row-independent too), so the documented 1e-4
// relative drift bound against the float64 path carries over unchanged.
func (sm *StackedModel) InferEnsembleBatch32(pg *PackedGraphs, s *BatchScratch, out []float64) error {
	c, nOps := pg.c, pg.nOps
	if len(out) != c*sm.k {
		return fmt.Errorf("gnn: output buffer holds %d values, want %d candidates x %d members", len(out), c, sm.k)
	}
	if err := sm.checkBatch(pg); err != nil {
		return err
	}
	if s == nil {
		s = NewBatchScratch()
	}
	H := sm.cfg.Hidden
	kH := sm.k * H
	k2H := sm.k * 2 * H
	hTot := pg.hostOff[c]

	s.encOps32 = grow32(s.encOps32, nOps*kH)
	for kind := range pg.opsByKind {
		idxs := pg.opsByKind[kind]
		if len(idxs) == 0 {
			continue
		}
		enc := sm.enc[NodeKind(kind)]
		in := enc.InDim()
		s.gather32 = grow32(s.gather32, len(idxs)*in)
		for r, idx := range idxs {
			row := s.gather32[r*in : (r+1)*in]
			for i, f := range pg.base.Nodes[idx].Feat {
				row[i] = float32(f)
			}
		}
		s.tmp32 = grow32(s.tmp32, len(idxs)*kH)
		enc.ForwardShared32(s.tmp32, s.gather32, len(idxs), &s.dense)
		for r, idx := range idxs {
			copy(s.encOps32[idx*kH:(idx+1)*kH], s.tmp32[r*kH:(r+1)*kH])
		}
	}

	if hTot > 0 {
		enc := sm.enc[KindHost]
		in := enc.InDim()
		s.gather32 = grow32(s.gather32, hTot*in)
		for slot, f := range pg.hostFeat[:hTot] {
			row := s.gather32[slot*in : (slot+1)*in]
			for i, x := range f {
				row[i] = float32(x)
			}
		}
		s.hostEnc32 = grow32(s.hostEnc32, hTot*kH)
		enc.ForwardShared32(s.hostEnc32, s.gather32, hTot, &s.dense)

		s.cat32 = grow32(s.cat32, hTot*k2H)
		for slot := 0; slot < hTot; slot++ {
			kids := pg.kids[pg.kidsOff[slot]:pg.kidsOff[slot+1]]
			catRow32(s.cat32[slot*k2H:(slot+1)*k2H], kids, slot, sm.k, H, s.encOps32, s.hostEnc32)
		}
		s.hostNext32 = grow32(s.hostNext32, hTot*kH)
		sm.upd[KindHost].ForwardBlocks32(s.hostNext32, s.cat32, hTot, &s.dense)
	}

	s.after232 = grow32(s.after232, c*nOps*kH)
	for ci := 0; ci < c; ci++ {
		copy(s.after232[ci*nOps*kH:(ci+1)*nOps*kH], s.encOps32[:nOps*kH])
	}
	if hTot > 0 {
		var kidBuf [1]int
		for kind := range pg.opsByKind {
			idxs := pg.opsByKind[kind]
			if len(idxs) == 0 {
				continue
			}
			rows := 0
			for ci := 0; ci < c; ci++ {
				for _, v := range idxs {
					if pg.opHost[ci*nOps+v] >= 0 {
						rows++
					}
				}
			}
			if rows == 0 {
				continue
			}
			s.cat32 = grow32(s.cat32, rows*k2H)
			r := 0
			for ci := 0; ci < c; ci++ {
				for _, v := range idxs {
					slot := pg.opHost[ci*nOps+v]
					if slot < 0 {
						continue
					}
					kidBuf[0] = slot
					catRow32(s.cat32[r*k2H:(r+1)*k2H], kidBuf[:], v, sm.k, H, s.hostNext32, s.encOps32)
					r++
				}
			}
			s.tmp32 = grow32(s.tmp32, rows*kH)
			sm.upd[NodeKind(kind)].ForwardBlocks32(s.tmp32, s.cat32, rows, &s.dense)
			r = 0
			for ci := 0; ci < c; ci++ {
				for _, v := range idxs {
					if pg.opHost[ci*nOps+v] < 0 {
						continue
					}
					copy(s.after232[(ci*nOps+v)*kH:(ci*nOps+v+1)*kH], s.tmp32[r*kH:(r+1)*kH])
					r++
				}
			}
		}
	}

	s.final32 = grow32(s.final32, c*nOps*kH)
	copy(s.final32, s.after232[:c*nOps*kH])
	s.cat32 = grow32(s.cat32, max(len(s.cat32), c*k2H))
	s.tmp32 = grow32(s.tmp32, max(len(s.tmp32), c*kH))
	for _, v := range pg.plan.order {
		parents := pg.plan.ups[v]
		if len(parents) == 0 {
			continue
		}
		for ci := 0; ci < c; ci++ {
			plane := ci * nOps * kH
			catRow32(s.cat32[ci*k2H:(ci+1)*k2H], parents, v, sm.k, H,
				s.final32[plane:plane+nOps*kH], s.after232[plane:plane+nOps*kH])
		}
		sm.upd[pg.base.Nodes[v].Kind].ForwardBlocks32(s.tmp32[:c*kH], s.cat32[:c*k2H], c, &s.dense)
		for ci := 0; ci < c; ci++ {
			copy(s.final32[(ci*nOps+v)*kH:(ci*nOps+v+1)*kH], s.tmp32[ci*kH:(ci+1)*kH])
		}
	}

	s.agg32 = grow32(s.agg32, c*kH)
	for ci := 0; ci < c; ci++ {
		agg := s.agg32[ci*kH : (ci+1)*kH]
		fin := s.final32[ci*nOps*kH : (ci+1)*nOps*kH]
		copy(agg, fin[:kH])
		for v := 1; v < nOps; v++ {
			blk := fin[v*kH : (v+1)*kH]
			for i, x := range blk {
				agg[i] += x
			}
		}
		for slot := pg.hostOff[ci]; slot < pg.hostOff[ci+1]; slot++ {
			blk := s.hostNext32[slot*kH : (slot+1)*kH]
			for i, x := range blk {
				agg[i] += x
			}
		}
	}
	s.tmp32 = grow32(s.tmp32, max(len(s.tmp32), c*sm.k))
	sm.out.ForwardBlocks32(s.tmp32[:c*sm.k], s.agg32[:c*kH], c, &s.dense)
	for i := 0; i < c*sm.k; i++ {
		out[i] = float64(s.tmp32[i])
	}
	return nil
}

// Hidden returns the stacked architecture's hidden width (used by tile
// sizing heuristics to bound per-tile activation footprints).
func (sm *StackedModel) Hidden() int { return sm.cfg.Hidden }

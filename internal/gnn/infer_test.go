package gnn

import (
	"testing"

	"costream/internal/nn"
)

// TestInferMatchesForward pins the tape-free inference pass to the
// training-time Forward pass: both must produce bit-identical outputs,
// which is what lets the batched placement scorer use Infer while
// remaining exactly equivalent to the per-candidate path.
func TestInferMatchesForward(t *testing.T) {
	for _, traditional := range []bool{false, true} {
		m := newTestModel(t, traditional)
		for _, srcFeat := range []float64{0.0, 0.25, 0.5, 0.75, 1.0} {
			g := testGraph(srcFeat)
			tape := nn.NewTape()
			fwd, err := m.Forward(tape, g)
			if err != nil {
				t.Fatal(err)
			}
			inf, err := m.Infer(g)
			if err != nil {
				t.Fatal(err)
			}
			if inf != fwd.Data[0] {
				t.Errorf("traditional=%v srcFeat=%v: Infer=%v Forward=%v",
					traditional, srcFeat, inf, fwd.Data[0])
			}
		}
	}
}

// TestInferDoesNotMutateGraph guards the read-only contract batch scoring
// relies on when sharing node feature slices across graphs.
func TestInferDoesNotMutateGraph(t *testing.T) {
	m := newTestModel(t, false)
	g := testGraph(0.5)
	var before [][]float64
	for _, nd := range g.Nodes {
		before = append(before, append([]float64(nil), nd.Feat...))
	}
	if _, err := m.Infer(g); err != nil {
		t.Fatal(err)
	}
	for i, nd := range g.Nodes {
		for j, x := range nd.Feat {
			if x != before[i][j] {
				t.Fatalf("node %d feature %d mutated: %v -> %v", i, j, before[i][j], x)
			}
		}
	}
}

// TestInferRejectsBadGraphs mirrors Forward's validation behavior.
func TestInferRejectsBadGraphs(t *testing.T) {
	m := newTestModel(t, false)
	if _, err := m.Infer(&Graph{}); err == nil {
		t.Error("empty graph accepted")
	}
	g := testGraph(0.5)
	g.Nodes[0].Feat = []float64{1} // wrong dimension
	if _, err := m.Infer(g); err == nil {
		t.Error("wrong feature dimension accepted")
	}
}

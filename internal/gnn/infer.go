package gnn

import (
	"fmt"
	"sort"
)

// Plan caches the placement-invariant message-passing structure of a
// query's operator flow graph: the topological order of phase 3 and the
// per-operator upstream lists. Placement candidates for one query share
// the operator nodes and flow edges, so one Plan serves every candidate
// graph derived from the same base — batch scoring builds it once instead
// of re-deriving it inside each of the 5 metrics x k members inference
// passes.
type Plan struct {
	order []int   // operator node indices in topological flow order
	ups   [][]int // per-operator upstream node indices, in flow-edge order
}

// NewPlan validates the graph and derives its reusable flow structure.
// The plan remains valid for any graph that extends g with host nodes and
// placement edges (flow edges only ever connect operator nodes).
func NewPlan(g *Graph) (*Plan, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	order, err := g.opTopoOrder()
	if err != nil {
		return nil, err
	}
	ups := make([][]int, len(g.Nodes))
	for _, e := range g.FlowEdges {
		ups[e[1]] = append(ups[e[1]], e[0])
	}
	return &Plan{order: order, ups: ups}, nil
}

// Infer runs a forward pass without recording a tape: no gradient buffers
// or backward closures are allocated, making it the cheap path for pure
// cost prediction (placement scoring evaluates thousands of graphs and
// never needs gradients). The message-passing order mirrors Forward
// operation for operation, so Infer and Forward produce bit-identical
// outputs for the same graph and weights.
func (m *Model) Infer(g *Graph) (float64, error) {
	plan, err := NewPlan(g)
	if err != nil {
		return 0, err
	}
	return m.InferPlanned(g, plan)
}

// InferPlanned is Infer with a precomputed Plan. The graph is trusted to
// be structurally valid and consistent with the plan (batch scoring
// guarantees this by constructing both from the same base graph); only
// the per-node encoder checks remain.
func (m *Model) InferPlanned(g *Graph, plan *Plan) (float64, error) {
	hidden := make([][]float64, len(g.Nodes))
	for i, nd := range g.Nodes {
		enc, ok := m.enc[nd.Kind]
		if !ok {
			return 0, fmt.Errorf("gnn: no encoder for kind %v", nd.Kind)
		}
		if len(nd.Feat) != enc.InDim() {
			return 0, fmt.Errorf("gnn: node %d (%v) has %d features, encoder wants %d",
				i, nd.Kind, len(nd.Feat), enc.InDim())
		}
		hidden[i] = enc.Infer(nd.Feat)
	}
	if m.cfg.Traditional {
		hidden = m.inferTraditional(g, hidden)
	} else {
		hidden = m.inferDirected(g, hidden, plan)
	}
	return m.out.Infer(vecSum(hidden))[0], nil
}

// vecSum sums equally sized vectors in argument order, matching
// Tape.Sum's forward accumulation exactly.
func vecSum(vs [][]float64) []float64 {
	data := make([]float64, len(vs[0]))
	for _, v := range vs {
		for i, x := range v {
			data[i] += x
		}
	}
	return data
}

// inferUpdate is the tape-free twin of update: the node-type specific
// update MLP applied to concat(sum(children), own state).
func (m *Model) inferUpdate(kind NodeKind, children [][]float64, own []float64) []float64 {
	agg := vecSum(children)
	cat := make([]float64, 0, len(agg)+len(own))
	cat = append(cat, agg...)
	cat = append(cat, own...)
	return m.upd[kind].Infer(cat)
}

// inferDirected mirrors directedPassing's three ordered phases.
func (m *Model) inferDirected(g *Graph, h [][]float64, plan *Plan) [][]float64 {
	// Phase 1: operators -> hardware.
	hostChildren := make(map[int][][]float64)
	hostOrder := make([]int, 0, 8)
	for _, e := range g.PlaceEdges {
		if _, ok := hostChildren[e[1]]; !ok {
			hostOrder = append(hostOrder, e[1])
		}
		hostChildren[e[1]] = append(hostChildren[e[1]], h[e[0]])
	}
	sort.Ints(hostOrder)
	next := make([][]float64, len(h))
	copy(next, h)
	for _, hostIdx := range hostOrder {
		next[hostIdx] = m.inferUpdate(KindHost, hostChildren[hostIdx], h[hostIdx])
	}

	// Phase 2: hardware -> operators.
	after2 := make([][]float64, len(next))
	copy(after2, next)
	for _, e := range g.PlaceEdges {
		opIdx, hostIdx := e[0], e[1]
		after2[opIdx] = m.inferUpdate(g.Nodes[opIdx].Kind, [][]float64{next[hostIdx]}, next[opIdx])
	}

	// Phase 3: sources -> ... -> sink along the data flow.
	final := make([][]float64, len(after2))
	copy(final, after2)
	for _, v := range plan.order {
		parents := plan.ups[v]
		if len(parents) == 0 {
			continue
		}
		children := make([][]float64, len(parents))
		for i, p := range parents {
			children[i] = final[p]
		}
		final[v] = m.inferUpdate(g.Nodes[v].Kind, children, after2[v])
	}
	return final
}

// inferTraditional mirrors traditionalPassing (the Exp 7b ablation). The
// neighbor structure depends on placement edges, so nothing of the Plan
// applies here.
func (m *Model) inferTraditional(g *Graph, h [][]float64) [][]float64 {
	n := len(g.Nodes)
	neighbors := make([][]int, n)
	addEdge := func(a, b int) {
		neighbors[a] = append(neighbors[a], b)
		neighbors[b] = append(neighbors[b], a)
	}
	for _, e := range g.FlowEdges {
		addEdge(e[0], e[1])
	}
	for _, e := range g.PlaceEdges {
		addEdge(e[0], e[1])
	}
	cur := h
	for round := 0; round < m.cfg.TraditionalRounds; round++ {
		next := make([][]float64, n)
		for v := 0; v < n; v++ {
			if len(neighbors[v]) == 0 {
				next[v] = cur[v]
				continue
			}
			children := make([][]float64, len(neighbors[v]))
			for i, u := range neighbors[v] {
				children[i] = cur[u]
			}
			next[v] = m.inferUpdate(g.Nodes[v].Kind, children, cur[v])
		}
		cur = next
	}
	return cur
}

package gnn

import (
	"fmt"
	"maps"
	"slices"

	"costream/internal/nn"
)

// StackedModel runs a whole ensemble — k Models of identical architecture
// sharing one Plan — through node-batched matrix-matrix kernels: one
// fused pass per message-passing phase instead of k independent
// matrix-vector passes. Member m's weights occupy block m of every
// stacked layer (nn.StackedMLP), activations live in an interleaved
// node-major, member-block layout, and per-worker StackedScratch buffers
// make the steady-state pass allocation-free.
//
// The float64 path (InferEnsemble) is bit-identical, member for member,
// to Model.InferPlanned: every kernel accumulates in the same order as
// the per-vector code. InferEnsemble32 is an opt-in float32 fast path
// trading ~7 decimal digits of precision for half the memory traffic.
//
// Stacking copies the weights; a stack goes stale when any member's
// weights are updated in place (fine-tuning, artifact reload) and must be
// rebuilt via Stack.
type StackedModel struct {
	cfg Config
	k   int
	enc map[NodeKind]*nn.StackedMLP
	upd map[NodeKind]*nn.StackedMLP
	out *nn.StackedMLP
}

// Stack vertically stacks the weights of k models for one-pass ensemble
// inference. All models must share one architecture (Config equality up
// to TraditionalRounds) and use the paper's directed message passing —
// the Exp 7b traditional ablation re-derives its neighbor structure per
// graph and is not supported (callers fall back to per-member Infer).
func Stack(models []*Model) (*StackedModel, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("gnn: stacking zero models")
	}
	cfg := models[0].cfg
	if cfg.Traditional {
		return nil, fmt.Errorf("gnn: stacked inference does not support traditional message passing")
	}
	for i, m := range models[1:] {
		c := m.cfg
		if c.Hidden != cfg.Hidden || c.EncHidden != cfg.EncHidden ||
			c.UpdHidden != cfg.UpdHidden || c.OutHidden != cfg.OutHidden ||
			c.Traditional != cfg.Traditional || !maps.Equal(c.FeatDims, cfg.FeatDims) {
			return nil, fmt.Errorf("gnn: model %d has a different architecture", i+1)
		}
	}
	sm := &StackedModel{
		cfg: cfg,
		k:   len(models),
		enc: make(map[NodeKind]*nn.StackedMLP, len(models[0].enc)),
		upd: make(map[NodeKind]*nn.StackedMLP, len(models[0].upd)),
	}
	for _, kind := range AllKinds() {
		if _, ok := models[0].enc[kind]; !ok {
			continue
		}
		encs := make([]*nn.MLP, len(models))
		upds := make([]*nn.MLP, len(models))
		for m, mod := range models {
			e, okE := mod.enc[kind]
			u, okU := mod.upd[kind]
			if !okE || !okU {
				return nil, fmt.Errorf("gnn: model %d is missing %v networks", m, kind)
			}
			encs[m], upds[m] = e, u
		}
		se, err := nn.StackMLPs(encs)
		if err != nil {
			return nil, fmt.Errorf("gnn: stacking %v encoders: %w", kind, err)
		}
		su, err := nn.StackMLPs(upds)
		if err != nil {
			return nil, fmt.Errorf("gnn: stacking %v updaters: %w", kind, err)
		}
		sm.enc[kind], sm.upd[kind] = se, su
	}
	outs := make([]*nn.MLP, len(models))
	for m, mod := range models {
		outs[m] = mod.out
	}
	so, err := nn.StackMLPs(outs)
	if err != nil {
		return nil, fmt.Errorf("gnn: stacking readouts: %w", err)
	}
	sm.out = so
	return sm, nil
}

// K returns the number of stacked members.
func (sm *StackedModel) K() int { return sm.k }

// StackedScratch holds the reusable per-worker buffers of a stacked
// forward pass: the interleaved node-major×member-block activation
// planes of the three phases, the gather/concat staging rows and the
// per-kind index lists. One StackedScratch serves one goroutine; a nil
// scratch is accepted and allocates fresh buffers for that call.
type StackedScratch struct {
	h, next, after2, final []float64 // n × (k·H) activation planes
	gather                 []float64 // rows × featDim encoder inputs
	cat                    []float64 // rows × (k·2H) update inputs
	tmp                    []float64 // rows × (k·H) kernel outputs
	agg                    []float64 // k·H readout accumulator

	h32, next32, after232, final32 []float32
	gather32, cat32, tmp32, agg32  []float32

	dense     nn.DenseScratch
	byKind    [numKinds][]int // node indices grouped by kind
	edgeKind  [numKinds][]int // placement-edge indices grouped by op kind
	hostOrder []int
	hostKids  [][]int // per node index: child operator indices
}

// NewStackedScratch returns an empty scratch; its buffers grow on first
// use and are reused afterwards.
func NewStackedScratch() *StackedScratch { return &StackedScratch{} }

func grow64(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func grow32(buf []float32, n int) []float32 {
	if cap(buf) < n {
		return make([]float32, n)
	}
	return buf[:n]
}

func growInts(buf [][]int, n int) [][]int {
	if cap(buf) < n {
		next := make([][]int, n)
		copy(next, buf[:cap(buf)])
		return next
	}
	return buf[:n]
}

// prepare resets per-call state and groups nodes (and placement edges) by
// kind, running the per-node encoder checks shared by both precisions.
func (sm *StackedModel) prepare(g *Graph, s *StackedScratch) error {
	for i := range s.byKind {
		s.byKind[i] = s.byKind[i][:0]
		s.edgeKind[i] = s.edgeKind[i][:0]
	}
	for i, nd := range g.Nodes {
		enc, ok := sm.enc[nd.Kind]
		if !ok {
			return fmt.Errorf("gnn: no encoder for kind %v", nd.Kind)
		}
		if len(nd.Feat) != enc.InDim() {
			return fmt.Errorf("gnn: node %d (%v) has %d features, encoder wants %d",
				i, nd.Kind, len(nd.Feat), enc.InDim())
		}
		s.byKind[nd.Kind] = append(s.byKind[nd.Kind], i)
	}
	for ei, e := range g.PlaceEdges {
		s.edgeKind[g.Nodes[e[0]].Kind] = append(s.edgeKind[g.Nodes[e[0]].Kind], ei)
	}
	s.hostKids = growInts(s.hostKids, len(g.Nodes))
	s.hostOrder = s.hostOrder[:0]
	for _, e := range g.PlaceEdges {
		if len(s.hostKids[e[1]]) == 0 {
			s.hostOrder = append(s.hostOrder, e[1])
		}
		s.hostKids[e[1]] = append(s.hostKids[e[1]], e[0])
	}
	slices.Sort(s.hostOrder)
	return nil
}

// releaseHosts empties the per-host child lists for the next call.
func (s *StackedScratch) releaseHosts() {
	for _, hostIdx := range s.hostOrder {
		s.hostKids[hostIdx] = s.hostKids[hostIdx][:0]
	}
}

// catRow writes one interleaved update-input row: for each member m the
// concat of (sum of child states in child order, own state), children
// read from childSrc and the own state from ownSrc — both n×(k·H)
// activation planes. Summation order matches vecSum exactly.
func catRow(dst []float64, kids []int, own, k, H int, childSrc, ownSrc []float64) {
	kH := k * H
	for m := 0; m < k; m++ {
		agg := dst[m*2*H : m*2*H+H]
		copy(agg, childSrc[kids[0]*kH+m*H:kids[0]*kH+m*H+H])
		for _, kid := range kids[1:] {
			blk := childSrc[kid*kH+m*H : kid*kH+m*H+H]
			for i, v := range blk {
				agg[i] += v
			}
		}
		copy(dst[m*2*H+H:m*2*H+2*H], ownSrc[own*kH+m*H:own*kH+m*H+H])
	}
}

// InferEnsemble runs one forward pass for all k members at once and
// writes each member's raw scalar output into out (len k), bit-identical
// to calling Model.InferPlanned per member. The graph is trusted to be
// structurally valid and consistent with the plan (NewPlan validated it);
// only the per-node encoder checks remain.
func (sm *StackedModel) InferEnsemble(g *Graph, plan *Plan, s *StackedScratch, out []float64) error {
	if len(out) != sm.k {
		return fmt.Errorf("gnn: output buffer holds %d values, stack has %d members", len(out), sm.k)
	}
	if s == nil {
		s = NewStackedScratch()
	}
	if err := sm.prepare(g, s); err != nil {
		return err
	}
	defer s.releaseHosts()
	n := len(g.Nodes)
	H := sm.cfg.Hidden
	kH := sm.k * H
	s.h = grow64(s.h, n*kH)
	s.next = grow64(s.next, n*kH)
	s.after2 = grow64(s.after2, n*kH)
	s.final = grow64(s.final, n*kH)

	// Encode: one matrix-matrix pass per node kind over all nodes of that
	// kind, the features shared across members.
	for kind := range s.byKind {
		idxs := s.byKind[kind]
		if len(idxs) == 0 {
			continue
		}
		enc := sm.enc[NodeKind(kind)]
		in := enc.InDim()
		s.gather = grow64(s.gather, len(idxs)*in)
		for r, idx := range idxs {
			copy(s.gather[r*in:(r+1)*in], g.Nodes[idx].Feat)
		}
		s.tmp = grow64(s.tmp, len(idxs)*kH)
		enc.ForwardShared(s.tmp, s.gather, len(idxs), &s.dense)
		for r, idx := range idxs {
			copy(s.h[idx*kH:(idx+1)*kH], s.tmp[r*kH:(r+1)*kH])
		}
	}

	// Phase 1: operators -> hardware, every placed-on host in one batch
	// (host updates only read phase-0 states, so they are independent).
	copy(s.next[:n*kH], s.h[:n*kH])
	if rows := len(s.hostOrder); rows > 0 {
		s.cat = grow64(s.cat, rows*sm.k*2*H)
		for r, hostIdx := range s.hostOrder {
			catRow(s.cat[r*sm.k*2*H:(r+1)*sm.k*2*H], s.hostKids[hostIdx], hostIdx, sm.k, H, s.h, s.h)
		}
		s.tmp = grow64(s.tmp, rows*kH)
		sm.upd[KindHost].ForwardBlocks(s.tmp, s.cat, rows, &s.dense)
		for r, hostIdx := range s.hostOrder {
			copy(s.next[hostIdx*kH:(hostIdx+1)*kH], s.tmp[r*kH:(r+1)*kH])
		}
	}

	// Phase 2: hardware -> operators, batched per operator kind (each
	// operator reads only phase-1 states).
	copy(s.after2[:n*kH], s.next[:n*kH])
	for kind := range s.edgeKind {
		eidxs := s.edgeKind[kind]
		if len(eidxs) == 0 {
			continue
		}
		upd := sm.upd[NodeKind(kind)]
		rows := len(eidxs)
		s.cat = grow64(s.cat, rows*sm.k*2*H)
		for r, ei := range eidxs {
			e := g.PlaceEdges[ei]
			host := e[1:2]
			catRow(s.cat[r*sm.k*2*H:(r+1)*sm.k*2*H], host, e[0], sm.k, H, s.next, s.next)
		}
		s.tmp = grow64(s.tmp, rows*kH)
		upd.ForwardBlocks(s.tmp, s.cat, rows, &s.dense)
		for r, ei := range eidxs {
			op := g.PlaceEdges[ei][0]
			copy(s.after2[op*kH:(op+1)*kH], s.tmp[r*kH:(r+1)*kH])
		}
	}

	// Phase 3: sources -> ... -> sink along the data flow; inherently
	// sequential in topological order, but each step advances all k
	// members in one kernel call.
	copy(s.final[:n*kH], s.after2[:n*kH])
	s.cat = grow64(s.cat, max(len(s.cat), sm.k*2*H))
	s.tmp = grow64(s.tmp, max(len(s.tmp), kH))
	for _, v := range plan.order {
		parents := plan.ups[v]
		if len(parents) == 0 {
			continue // sources send but do not receive in this phase
		}
		catRow(s.cat[:sm.k*2*H], parents, v, sm.k, H, s.final, s.after2)
		sm.upd[g.Nodes[v].Kind].ForwardBlocks(s.tmp[:kH], s.cat[:sm.k*2*H], 1, &s.dense)
		copy(s.final[v*kH:(v+1)*kH], s.tmp[:kH])
	}

	// Readout: per-member sum over all node states in node order, then
	// the stacked output MLP.
	s.agg = grow64(s.agg, kH)
	copy(s.agg, s.final[:kH])
	for v := 1; v < n; v++ {
		blk := s.final[v*kH : (v+1)*kH]
		for i, x := range blk {
			s.agg[i] += x
		}
	}
	sm.out.ForwardBlocks(s.tmp[:sm.k], s.agg, 1, &s.dense)
	copy(out, s.tmp[:sm.k])
	return nil
}

// catRow32 is the float32 twin of catRow.
func catRow32(dst []float32, kids []int, own, k, H int, childSrc, ownSrc []float32) {
	kH := k * H
	for m := 0; m < k; m++ {
		agg := dst[m*2*H : m*2*H+H]
		copy(agg, childSrc[kids[0]*kH+m*H:kids[0]*kH+m*H+H])
		for _, kid := range kids[1:] {
			blk := childSrc[kid*kH+m*H : kid*kH+m*H+H]
			for i, v := range blk {
				agg[i] += v
			}
		}
		copy(dst[m*2*H+H:m*2*H+2*H], ownSrc[own*kH+m*H:own*kH+m*H+H])
	}
}

// InferEnsemble32 is InferEnsemble on the float32 fast path: same kernel
// structure, float32 weights and activations, results within a small
// relative tolerance of the float64 path (see the equivalence tests; the
// documented bound is 1e-4 relative on raw outputs). Callers opt in when
// throughput matters more than the last digits — predictions feed rank
// decisions, which are insensitive at this scale.
func (sm *StackedModel) InferEnsemble32(g *Graph, plan *Plan, s *StackedScratch, out []float64) error {
	if len(out) != sm.k {
		return fmt.Errorf("gnn: output buffer holds %d values, stack has %d members", len(out), sm.k)
	}
	if s == nil {
		s = NewStackedScratch()
	}
	if err := sm.prepare(g, s); err != nil {
		return err
	}
	defer s.releaseHosts()
	n := len(g.Nodes)
	H := sm.cfg.Hidden
	kH := sm.k * H
	s.h32 = grow32(s.h32, n*kH)
	s.next32 = grow32(s.next32, n*kH)
	s.after232 = grow32(s.after232, n*kH)
	s.final32 = grow32(s.final32, n*kH)

	for kind := range s.byKind {
		idxs := s.byKind[kind]
		if len(idxs) == 0 {
			continue
		}
		enc := sm.enc[NodeKind(kind)]
		in := enc.InDim()
		s.gather32 = grow32(s.gather32, len(idxs)*in)
		for r, idx := range idxs {
			row := s.gather32[r*in : (r+1)*in]
			for i, f := range g.Nodes[idx].Feat {
				row[i] = float32(f)
			}
		}
		s.tmp32 = grow32(s.tmp32, len(idxs)*kH)
		enc.ForwardShared32(s.tmp32, s.gather32, len(idxs), &s.dense)
		for r, idx := range idxs {
			copy(s.h32[idx*kH:(idx+1)*kH], s.tmp32[r*kH:(r+1)*kH])
		}
	}

	copy(s.next32[:n*kH], s.h32[:n*kH])
	if rows := len(s.hostOrder); rows > 0 {
		s.cat32 = grow32(s.cat32, rows*sm.k*2*H)
		for r, hostIdx := range s.hostOrder {
			catRow32(s.cat32[r*sm.k*2*H:(r+1)*sm.k*2*H], s.hostKids[hostIdx], hostIdx, sm.k, H, s.h32, s.h32)
		}
		s.tmp32 = grow32(s.tmp32, rows*kH)
		sm.upd[KindHost].ForwardBlocks32(s.tmp32, s.cat32, rows, &s.dense)
		for r, hostIdx := range s.hostOrder {
			copy(s.next32[hostIdx*kH:(hostIdx+1)*kH], s.tmp32[r*kH:(r+1)*kH])
		}
	}

	copy(s.after232[:n*kH], s.next32[:n*kH])
	for kind := range s.edgeKind {
		eidxs := s.edgeKind[kind]
		if len(eidxs) == 0 {
			continue
		}
		upd := sm.upd[NodeKind(kind)]
		rows := len(eidxs)
		s.cat32 = grow32(s.cat32, rows*sm.k*2*H)
		for r, ei := range eidxs {
			e := g.PlaceEdges[ei]
			catRow32(s.cat32[r*sm.k*2*H:(r+1)*sm.k*2*H], e[1:2], e[0], sm.k, H, s.next32, s.next32)
		}
		s.tmp32 = grow32(s.tmp32, rows*kH)
		upd.ForwardBlocks32(s.tmp32, s.cat32, rows, &s.dense)
		for r, ei := range eidxs {
			op := g.PlaceEdges[ei][0]
			copy(s.after232[op*kH:(op+1)*kH], s.tmp32[r*kH:(r+1)*kH])
		}
	}

	copy(s.final32[:n*kH], s.after232[:n*kH])
	s.cat32 = grow32(s.cat32, max(len(s.cat32), sm.k*2*H))
	s.tmp32 = grow32(s.tmp32, max(len(s.tmp32), kH))
	for _, v := range plan.order {
		parents := plan.ups[v]
		if len(parents) == 0 {
			continue
		}
		catRow32(s.cat32[:sm.k*2*H], parents, v, sm.k, H, s.final32, s.after232)
		sm.upd[g.Nodes[v].Kind].ForwardBlocks32(s.tmp32[:kH], s.cat32[:sm.k*2*H], 1, &s.dense)
		copy(s.final32[v*kH:(v+1)*kH], s.tmp32[:kH])
	}

	s.agg32 = grow32(s.agg32, kH)
	copy(s.agg32, s.final32[:kH])
	for v := 1; v < n; v++ {
		blk := s.final32[v*kH : (v+1)*kH]
		for i, x := range blk {
			s.agg32[i] += x
		}
	}
	sm.out.ForwardBlocks32(s.tmp32[:sm.k], s.agg32, 1, &s.dense)
	for m := 0; m < sm.k; m++ {
		out[m] = float64(s.tmp32[m])
	}
	return nil
}

package costream_test

import (
	"fmt"

	"costream"
)

// ExampleNewQueryBuilder demonstrates composing a windowed join query.
func ExampleNewQueryBuilder() {
	b := costream.NewQueryBuilder()
	temps := b.AddSource(500, []costream.DataType{costream.TypeInt, costream.TypeDouble})
	humid := b.AddSource(500, []costream.DataType{costream.TypeInt, costream.TypeDouble})
	join := b.AddJoin(costream.TypeInt,
		costream.Window{Type: costream.WindowTumbling, Policy: costream.WindowCountBased, Size: 100, Slide: 100},
		0.001)
	sink := b.AddSink()
	b.Connect(temps, join).Connect(humid, join).Connect(join, sink)
	q, err := b.Build()
	if err != nil {
		panic(err)
	}
	fmt.Println(q.Class(), q.NumOps())
	// Output: 2-Way-Join 4
}

// ExampleExecute runs a query on the bundled execution simulator.
func ExampleExecute() {
	b := costream.NewQueryBuilder()
	src := b.AddSource(1000, []costream.DataType{costream.TypeInt})
	filt := b.AddFilter(costream.FilterGT, costream.TypeInt, 0.5)
	sink := b.AddSink()
	b.Chain(src, filt, sink)
	q, _ := b.Build()

	cluster := &costream.Cluster{Hosts: []*costream.Host{
		{ID: "cloud", CPU: 800, RAMMB: 32000, NetLatencyMS: 1, NetBandwidthMbps: 10000},
	}}
	m, err := costream.Execute(q, cluster, costream.Placement{0, 0, 0})
	if err != nil {
		panic(err)
	}
	fmt.Printf("success=%v throughput=%.0f ev/s\n", m.Success, m.ThroughputTPS)
	// Output: success=true throughput=500 ev/s
}

// ExampleHeuristicPlacement draws an initial placement under the paper's
// IoT heuristics (co-location, increasing capability, acyclic).
func ExampleHeuristicPlacement() {
	b := costream.NewQueryBuilder()
	src := b.AddSource(100, []costream.DataType{costream.TypeInt})
	sink := b.AddSink()
	b.Chain(src, sink)
	q, _ := b.Build()
	cluster := &costream.Cluster{Hosts: []*costream.Host{
		{ID: "only", CPU: 400, RAMMB: 8000, NetLatencyMS: 5, NetBandwidthMbps: 800},
	}}
	p, err := costream.HeuristicPlacement(q, cluster, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println(p)
	// Output: [0 0]
}

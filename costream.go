// Package costream is a from-scratch Go implementation of COSTREAM
// (Heinrich et al., ICDE 2024): a learned, zero-shot cost model for the
// initial placement of distributed stream processing operators on
// heterogeneous edge-cloud hardware.
//
// The package exposes the high-level workflow; the building blocks live in
// internal packages (query algebra, hardware model, execution simulator,
// neural network stack, GNN cost models, placement optimizer, benchmark
// generator, experiment harness):
//
//	// 1. Describe a streaming query.
//	b := costream.NewQueryBuilder()
//	src := b.AddSource(1000, []costream.DataType{costream.TypeInt, costream.TypeDouble})
//	f := b.AddFilter(costream.FilterGT, costream.TypeInt, 0.5)
//	sink := b.AddSink()
//	b.Chain(src, f, sink)
//	q, _ := b.Build()
//
//	// 2. Describe the hardware landscape.
//	cluster := &costream.Cluster{Hosts: []*costream.Host{...}}
//
//	// 3. Train a cost model on generated traces (or load a corpus).
//	corpus, _ := costream.GenerateCorpus(2000, 42)
//	model, _ := costream.TrainModel(corpus, costream.DefaultTrainOptions())
//
//	// 4. Predict costs for a placement, or optimize one.
//	costs, _ := model.PredictCosts(q, cluster, placement)
//	best, _ := model.OptimizePlacement(q, cluster, 16, costream.MinProcLatency, 7)
package costream

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"costream/internal/artifact"
	"costream/internal/controlplane"
	"costream/internal/core"
	"costream/internal/dataset"
	"costream/internal/fleet"
	"costream/internal/hardware"
	"costream/internal/placement"
	"costream/internal/sim"
	"costream/internal/stream"
	"costream/internal/workload"
)

// Re-exported query algebra types.
type (
	// Query is a DAG-shaped streaming query plan.
	Query = stream.Query
	// QueryBuilder assembles query plans fluently.
	QueryBuilder = stream.Builder
	// DataType enumerates tuple attribute types.
	DataType = stream.DataType
	// FilterFn enumerates filter comparison functions.
	FilterFn = stream.FilterFn
	// AggFn enumerates aggregation functions.
	AggFn = stream.AggFn
	// Window is a window specification for joins and aggregations.
	Window = stream.Window
	// Operator is one vertex of a query plan.
	Operator = stream.Operator
)

// Re-exported data type constants.
const (
	TypeInt    = stream.TypeInt
	TypeString = stream.TypeString
	TypeDouble = stream.TypeDouble
)

// Re-exported filter functions.
const (
	FilterLT         = stream.FilterLT
	FilterGT         = stream.FilterGT
	FilterLE         = stream.FilterLE
	FilterGE         = stream.FilterGE
	FilterNE         = stream.FilterNE
	FilterStartsWith = stream.FilterStartsWith
	FilterEndsWith   = stream.FilterEndsWith
)

// Re-exported aggregation functions.
const (
	AggMin  = stream.AggMin
	AggMax  = stream.AggMax
	AggMean = stream.AggMean
	AggAvg  = stream.AggAvg
)

// Re-exported window kinds.
const (
	WindowSliding    = stream.WindowSliding
	WindowTumbling   = stream.WindowTumbling
	WindowCountBased = stream.WindowCountBased
	WindowTimeBased  = stream.WindowTimeBased
)

// Re-exported hardware and execution types.
type (
	// Host is one compute node described by the four transferable
	// hardware features (CPU %, RAM MB, outgoing latency ms, outgoing
	// bandwidth Mbit/s).
	Host = hardware.Host
	// Cluster is the hardware landscape available for placement.
	Cluster = hardware.Cluster
	// Placement maps operator index to host index.
	Placement = sim.Placement
	// Metrics are the five measured cost metrics of an execution.
	Metrics = sim.Metrics
	// Costs are predicted cost metrics for a placement candidate.
	Costs = placement.PredCosts
	// Corpus is a collection of executed query traces used for training.
	Corpus = dataset.Corpus
	// Objective selects the placement optimization target.
	Objective = placement.Objective
)

// Re-exported placement search engine types (Section V). A SearchStrategy
// streams candidate placements into a shared budgeted search core that
// scores them with the cost model; see Model.OptimizePlacementSearch.
type (
	// SearchStrategy is a pluggable placement search algorithm.
	SearchStrategy = placement.Strategy
	// SearchBudget bounds the candidates scored and rounds run by one
	// search; budgets are directly comparable across strategies.
	SearchBudget = placement.Budget
	// SearchResult is the outcome of one placement search.
	SearchResult = placement.SearchResult
	// SearchOpts carries optional search knobs: seed, worker bound and
	// opt-in per-round telemetry collection.
	SearchOpts = placement.SearchOptions
	// SearchRoundStats is one round's telemetry record (SearchOpts
	// Telemetry must be set for SearchResult.Telemetry to be populated).
	SearchRoundStats = placement.RoundStats

	// RandomSampleStrategy scores a random sample of valid placements
	// (the paper's baseline; default).
	RandomSampleStrategy = placement.RandomSample
	// ExhaustiveStrategy enumerates the whole valid-placement space with
	// pruning, capped by the budget.
	ExhaustiveStrategy = placement.Exhaustive
	// BeamStrategy builds placements operator by operator, keeping the
	// best partial placements per step.
	BeamStrategy = placement.Beam
	// LocalSearchStrategy hill-climbs over operator moves and swaps.
	LocalSearchStrategy = placement.LocalSearch
)

// ParseSearchStrategy resolves a strategy name ("random", "exhaustive",
// "beam", "local-search") to its default-configured implementation.
func ParseSearchStrategy(name string) (SearchStrategy, error) {
	return placement.ParseStrategy(name)
}

// SearchStrategyNames lists the built-in placement search strategies.
func SearchStrategyNames() []string { return placement.StrategyNames() }

// Re-exported optimization objectives.
const (
	MinProcLatency = placement.MinProcLatency
	MinE2ELatency  = placement.MinE2ELatency
	MaxThroughput  = placement.MaxThroughput
)

// Re-exported fleet failure-injection simulator types (internal/fleet,
// driven by cmd/costream-sim). A FleetScenario declares a host fleet, a
// timed failure-event script and end-state assertions; RunFleetScenario
// walks the script with a self-healing placement loop that re-optimizes
// on observed-vs-predicted drift.
type (
	// FleetScenario is a parsed fleet simulation scenario.
	FleetScenario = fleet.Scenario
	// FleetReport is the deterministic JSON run report: event timeline,
	// per-query q-error trajectories, recovery actions and assertion
	// outcomes.
	FleetReport = fleet.Report
	// FleetRunOptions tunes a scenario run (predictor, observation
	// window, worker bound, progress logging).
	FleetRunOptions = fleet.RunOptions
	// CostPredictor scores placements during search and recovery;
	// *Model satisfies it via Model.Predictor.
	CostPredictor = placement.Predictor
)

// ParseFleetScenario parses and validates a scenario document.
func ParseFleetScenario(data []byte) (*FleetScenario, error) { return fleet.Parse(data) }

// LoadFleetScenario reads, parses and validates a scenario file.
func LoadFleetScenario(path string) (*FleetScenario, error) { return fleet.Load(path) }

// RunFleetScenario executes the scenario and returns its report; ctx
// cancels long placement searches mid-run. The report is deterministic
// for a fixed scenario, including across worker counts.
func RunFleetScenario(ctx context.Context, sc *FleetScenario, opts FleetRunOptions) (*FleetReport, error) {
	return fleet.Run(ctx, sc, opts)
}

// Predictor exposes the trained model as a placement cost predictor for
// FleetRunOptions.Predictor and other search entry points.
func (m *Model) Predictor() CostPredictor { return m.pred }

// Re-exported placement control plane (internal/controlplane, served by
// costream-serve as /v1/deployments and driven by costream-ctl): a
// registry of deployed queries healed by a periodic
// monitor -> detect -> re-optimize -> migrate tick, with host
// cordon/drain states every search strategy respects.
type (
	// ControlPlane is the deployment registry plus control-tick engine.
	ControlPlane = controlplane.Plane
	// ControlPlaneConfig configures NewControlPlane.
	ControlPlaneConfig = controlplane.Config
	// ControlPolicy is the control plane's decision kernel (thresholds,
	// hysteresis, search strategy and budget).
	ControlPolicy = controlplane.Policy
	// DeploymentStatus is one deployment's externally visible state,
	// including its bounded decision history.
	DeploymentStatus = controlplane.Status
)

// NewControlPlane builds a placement control plane;
// cfg.Policy.Predictor is required (use Model.Predictor()).
func NewControlPlane(cfg ControlPlaneConfig) (*ControlPlane, error) { return controlplane.New(cfg) }

// NewControlPlane builds a control plane over this model with the
// default policy (q-error drift threshold 2, warm-started local search,
// simulated metric feed).
func (m *Model) NewControlPlane() (*ControlPlane, error) {
	return controlplane.New(controlplane.Config{Policy: controlplane.Policy{Predictor: m.pred}})
}

// Deploy registers query q on cluster c with the control plane under
// id, runs the initial placement search (respecting any cordoned
// hosts) and returns the activated deployment's status. Subsequent
// ControlPlane.Tick calls keep the placement healthy.
func Deploy(ctx context.Context, cp *ControlPlane, id string, q *Query, c *Cluster) (DeploymentStatus, error) {
	return cp.Deploy(ctx, id, q, c, nil)
}

// NewQueryBuilder returns an empty query builder.
func NewQueryBuilder() *QueryBuilder { return stream.NewBuilder() }

// Execute runs the query under the placement on the cluster in the
// bundled execution simulator and returns the measured cost metrics.
func Execute(q *Query, c *Cluster, p Placement) (*Metrics, error) {
	return sim.Run(q, c, p, sim.DefaultConfig())
}

// GenerateCorpus builds a training corpus of n executed traces following
// the paper's benchmark distribution (Section VI, Table II).
func GenerateCorpus(n int, seed int64) (*Corpus, error) {
	return dataset.Build(dataset.BuildConfig{
		N:    n,
		Seed: seed,
		Gen:  workload.DefaultConfig(seed),
		Sim:  sim.DefaultConfig(),
	})
}

// TrainOptions configures TrainModel.
type TrainOptions struct {
	// Epochs, BatchSize, LearningRate and Hidden configure each GNN.
	Epochs       int
	BatchSize    int
	LearningRate float64
	Hidden       int
	// EnsembleSize is the number of models per cost metric.
	EnsembleSize int
	// Seed drives initialization and shuffling.
	Seed int64
	// Workers bounds the data-parallel training workers per model
	// (<= 0 selects GOMAXPROCS). Trained weights are bit-identical for
	// every Workers value. Total concurrency across all metrics and
	// ensemble members is capped by the shared process-wide budget
	// (GOMAXPROCS unless changed via SetTrainParallelism), so raising
	// Workers never oversubscribes the machine.
	Workers int
	// Logf, when set, receives training progress lines.
	Logf func(format string, args ...any)
}

// DefaultTrainOptions mirrors the paper's setup at laptop scale.
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{
		Epochs:       45,
		BatchSize:    16,
		LearningRate: 3e-3,
		Hidden:       32,
		EnsembleSize: 3,
		Seed:         1,
	}
}

// Model is a trained COSTREAM cost model: one GNN ensemble per cost
// metric, usable for cost prediction and placement optimization.
type Model struct {
	pred *core.Predictor
	prov ModelInfo
}

// ModelInfo is the provenance metadata stored alongside a model artifact:
// train seed, corpus size, epochs, ensemble size and creation time.
type ModelInfo = artifact.Provenance

// SetTrainParallelism bounds the total number of concurrently executing
// training worker tasks in this process, across every model, metric and
// ensemble member trained after the call; n <= 0 resets the budget to
// GOMAXPROCS. It does not affect trained weights — only how many cores
// training occupies.
func SetTrainParallelism(n int) { core.SetTrainBudget(n) }

// TrainModel trains COSTREAM on the corpus (80/10 train/validation split;
// the remainder is unused and may serve as a test set).
func TrainModel(c *Corpus, opts TrainOptions) (*Model, error) {
	if c == nil || c.Len() == 0 {
		return nil, fmt.Errorf("costream: empty corpus")
	}
	train, val, _ := c.Split(0.8, 0.1, opts.Seed)
	tc := core.TrainConfig{
		Epochs:    opts.Epochs,
		BatchSize: opts.BatchSize,
		LR:        opts.LearningRate,
		Hidden:    opts.Hidden,
		Seed:      opts.Seed,
		Patience:  8,
		Workers:   opts.Workers,
		Logf:      opts.Logf,
	}
	pr, err := core.TrainPredictor(train, val, core.PredictorConfig{
		Train:        tc,
		EnsembleSize: opts.EnsembleSize,
	})
	if err != nil {
		return nil, err
	}
	return &Model{pred: pr, prov: ModelInfo{
		CreatedAt:    time.Now().UTC(),
		TrainSeed:    opts.Seed,
		CorpusSize:   c.Len(),
		Epochs:       opts.Epochs,
		EnsembleSize: opts.EnsembleSize,
		Hidden:       opts.Hidden,
	}}, nil
}

// Save writes the full trained model — all metric ensembles with their
// GNN weights and featurizer state, plus provenance — as a versioned
// artifact. Paths ending in ".gz" are gzip-compressed. A model reloaded
// with LoadModel produces bit-identical predictions.
func (m *Model) Save(path string) error {
	return artifact.Save(path, m.pred, m.prov)
}

// LoadModel reads a model artifact written by Save (or costream-train).
func LoadModel(path string) (*Model, error) {
	pred, prov, err := artifact.Load(path)
	if err != nil {
		return nil, err
	}
	return &Model{pred: pred, prov: prov}, nil
}

// Info returns the model's provenance metadata.
func (m *Model) Info() ModelInfo { return m.prov }

// PredictCosts estimates the five cost metrics of executing the query
// under the given placement, without running it.
func (m *Model) PredictCosts(q *Query, c *Cluster, p Placement) (Costs, error) {
	return m.pred.PredictPlacement(q, c, p)
}

// PredictCostsBatch scores many placement candidates in one call,
// featurizing each candidate once and sharing the placement-invariant
// query and cluster features across the batch. Results match per-candidate
// PredictCosts calls exactly.
func (m *Model) PredictCostsBatch(q *Query, c *Cluster, candidates []Placement) ([]Costs, error) {
	return m.pred.PredictBatch(q, c, candidates)
}

// OptimizePlacement samples k heuristic placement candidates
// (co-location allowed, increasing capability bins, acyclic — Figure 5),
// filters out candidates predicted to fail or backpressure, and returns
// the one optimizing the objective together with its predicted costs.
// Candidates are scored in batches by a worker pool sized to GOMAXPROCS;
// use OptimizePlacementWith to bound it explicitly, or
// OptimizePlacementSearch to run a real search strategy instead of the
// random sample.
func (m *Model) OptimizePlacement(q *Query, c *Cluster, k int, obj Objective, seed int64) (Placement, Costs, error) {
	return m.OptimizePlacementWith(q, c, k, obj, seed, 0)
}

// OptimizePlacementWith is OptimizePlacement with an explicit bound on
// the number of concurrent scoring workers (<= 0 selects GOMAXPROCS).
// The chosen placement is independent of the worker count. It is the
// RandomSample strategy under a k-candidate budget.
func (m *Model) OptimizePlacementWith(q *Query, c *Cluster, k int, obj Objective, seed int64, workers int) (Placement, Costs, error) {
	res, err := m.OptimizePlacementSearch(q, c, RandomSampleStrategy{}, obj,
		SearchBudget{MaxCandidates: k}, seed, workers)
	if err != nil {
		return nil, Costs{}, err
	}
	return res.Placement, res.Costs, nil
}

// OptimizePlacementSearch runs a cost-guided placement search: the
// strategy streams candidate placements (generate -> score -> prune in
// rounds) into a budgeted search core that scores them with the model's
// batched predictor and returns the best under the objective. A nil
// strategy selects RandomSampleStrategy. The result is deterministic for
// a fixed seed and any worker count (<= 0 selects GOMAXPROCS).
func (m *Model) OptimizePlacementSearch(q *Query, c *Cluster, strat SearchStrategy, obj Objective, budget SearchBudget, seed int64, workers int) (*SearchResult, error) {
	return m.OptimizePlacementSearchOpts(q, c, strat, obj, budget,
		SearchOpts{Seed: seed, Workers: workers})
}

// OptimizePlacementSearchOpts is OptimizePlacementSearch with the full
// options struct, exposing opt-in per-round telemetry
// (SearchOpts{Telemetry: true} fills SearchResult.Telemetry). Telemetry
// collection is purely observational: the chosen placement is identical
// with it on or off.
func (m *Model) OptimizePlacementSearchOpts(q *Query, c *Cluster, strat SearchStrategy, obj Objective, budget SearchBudget, opts SearchOpts) (*SearchResult, error) {
	return m.OptimizePlacementSearchCtx(context.Background(), q, c, strat, obj, budget, opts)
}

// OptimizePlacementSearchCtx is OptimizePlacementSearchOpts with a
// context. Cancellation stops the search at the next scoring batch and
// returns the best placement found so far with SearchResult.Cancelled
// set; it errors only when no candidate was scored before the cancel.
func (m *Model) OptimizePlacementSearchCtx(ctx context.Context, q *Query, c *Cluster, strat SearchStrategy, obj Objective, budget SearchBudget, opts SearchOpts) (*SearchResult, error) {
	res, err := placement.SearchCtx(ctx, m.pred, q, c, strat, obj, budget, opts)
	if err != nil {
		return nil, fmt.Errorf("costream: %w", err)
	}
	return res, nil
}

// HeuristicPlacement returns a placement drawn by the plain IoT heuristic
// (the initial-placement baseline of the paper's Exp 2a).
func HeuristicPlacement(q *Query, c *Cluster, seed int64) (Placement, error) {
	return placement.RandomValid(rand.New(rand.NewSource(seed)), q, c)
}

// Benchmarks reproducing every table and figure of the paper's evaluation
// (Section VII). Each experiment benchmark prints the paper-style result
// table on its first iteration, so `go test -bench=. -benchmem` output
// doubles as the reproduction record (see EXPERIMENTS.md).
//
// Scale with COSTREAM_SCALE (default 1.0); e.g. COSTREAM_SCALE=0.25 for a
// quick smoke run. Shared artifacts (corpora, trained ensembles) are
// cached across benchmarks, so the first model-using benchmark pays the
// training cost.
package costream

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"

	"costream/internal/core"
	"costream/internal/dataset"
	"costream/internal/experiments"
	"costream/internal/fleet"
	"costream/internal/gnn"
	"costream/internal/hardware"
	"costream/internal/nn"
	"costream/internal/placement"
	"costream/internal/serve"
	"costream/internal/sim"
	"costream/internal/stream"
	"costream/internal/workload"
)

var (
	suiteOnce  sync.Once
	benchSuite *experiments.Suite
	printedMu  sync.Mutex
	printed    = map[string]bool{}
)

func expSuite() *experiments.Suite {
	suiteOnce.Do(func() {
		benchSuite = experiments.NewSuite(experiments.ScaleFromEnv())
		benchSuite.Logf = func(format string, args ...any) {
			fmt.Printf("# "+format+"\n", args...)
		}
	})
	return benchSuite
}

func runExperiment(b *testing.B, run func(s *experiments.Suite) (*experiments.Table, error)) {
	b.Helper()
	s := expSuite()
	for i := 0; i < b.N; i++ {
		t, err := run(s)
		if err != nil {
			b.Fatal(err)
		}
		// The framework may re-invoke the benchmark with a larger b.N;
		// print each experiment's table once per process.
		printedMu.Lock()
		if !printed[b.Name()] {
			printed[b.Name()] = true
			t.WriteText(os.Stdout)
		}
		printedMu.Unlock()
	}
}

// BenchmarkExp1OverallAccuracy reproduces Table III (and the left bar of
// Figure 1): overall q-errors and accuracies on the held-out test set.
func BenchmarkExp1OverallAccuracy(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*experiments.Table, error) {
		r, err := s.Exp1Overall()
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
}

// BenchmarkExp1HardwareBuckets reproduces Figure 7: prediction quality
// grouped over hardware feature ranges.
func BenchmarkExp1HardwareBuckets(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*experiments.Table, error) {
		r, err := s.Exp1Hardware()
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
}

// BenchmarkExp1QueryTypes reproduces Figure 8: prediction quality per
// query class.
func BenchmarkExp1QueryTypes(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*experiments.Table, error) {
		r, err := s.Exp1QueryTypes()
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
}

// BenchmarkExp2aPlacementSpeedup reproduces Figure 9: median processing-
// latency speed-ups of cost-model-optimized initial placements.
func BenchmarkExp2aPlacementSpeedup(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*experiments.Table, error) {
		r, err := s.Exp2aPlacement()
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
}

// BenchmarkExp2bOnlineMonitoring reproduces Figure 10: slow-down and
// monitoring overhead of the online rescheduling baseline.
func BenchmarkExp2bOnlineMonitoring(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*experiments.Table, error) {
		r, err := s.Exp2bMonitoring()
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
}

// BenchmarkExp2cSearchStrategies extends Exp 2 with the placement search
// engine: random / exhaustive / beam / local-search over the learned cost
// model under one shared candidate budget on 8-14 host clusters.
func BenchmarkExp2cSearchStrategies(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*experiments.Table, error) {
		r, err := s.Exp2cSearchStrategies()
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
}

// BenchmarkExp3Interpolation reproduces Table IV: unseen in-range hardware.
func BenchmarkExp3Interpolation(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*experiments.Table, error) {
		r, err := s.Exp3Interpolation()
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
}

// BenchmarkExp4Extrapolation reproduces Table V: hardware beyond the
// training range, stronger and weaker.
func BenchmarkExp4Extrapolation(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*experiments.Table, error) {
		r, err := s.Exp4Extrapolation()
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
}

// BenchmarkExp5aUnseenPatterns reproduces Table VI-A: filter-chain query
// patterns absent from the training data.
func BenchmarkExp5aUnseenPatterns(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*experiments.Table, error) {
		r, err := s.Exp5aUnseenPatterns()
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
}

// BenchmarkExp5bFineTuning reproduces Figure 11: few-shot fine-tuning on
// unseen query structures.
func BenchmarkExp5bFineTuning(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*experiments.Table, error) {
		r, err := s.Exp5bFineTuning()
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
}

// BenchmarkExp6UnseenBenchmarks reproduces Table VI-B: the Advertisement,
// Spike Detection and Smart Grid benchmark queries.
func BenchmarkExp6UnseenBenchmarks(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*experiments.Table, error) {
		r, err := s.Exp6Benchmarks()
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
}

// BenchmarkExp7aFeatureAblation reproduces Figure 12: featurization
// ablation for E2E latency.
func BenchmarkExp7aFeatureAblation(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*experiments.Table, error) {
		r, err := s.Exp7aFeatureAblation()
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
}

// BenchmarkExp7bMessagePassing reproduces Figure 13: the paper's directed
// message passing vs a traditional undirected scheme.
func BenchmarkExp7bMessagePassing(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*experiments.Table, error) {
		r, err := s.Exp7bMessagePassing()
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
}

// BenchmarkFig1Summary reproduces Figure 1: the headline seen-vs-unseen
// comparison, aggregated from Exps 1, 3, 5a and 6.
func BenchmarkFig1Summary(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*experiments.Table, error) {
		e1, err := s.Exp1Overall()
		if err != nil {
			return nil, err
		}
		e3, err := s.Exp3Interpolation()
		if err != nil {
			return nil, err
		}
		e5, err := s.Exp5aUnseenPatterns()
		if err != nil {
			return nil, err
		}
		e6, err := s.Exp6Benchmarks()
		if err != nil {
			return nil, err
		}
		return s.Fig1Summary(e1, e3, e5, e6).Table(), nil
	})
}

// BenchmarkCorpusGeneration measures trace generation + simulated
// execution throughput (the Section VI benchmark collection process).
func BenchmarkCorpusGeneration(b *testing.B) {
	simCfg := sim.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := dataset.Build(dataset.BuildConfig{
			N: 1, Seed: int64(i), Gen: workload.DefaultConfig(int64(i)), Sim: simCfg,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorRun measures one simulated query execution.
func BenchmarkSimulatorRun(b *testing.B) {
	gen := workload.New(workload.DefaultConfig(7))
	q := gen.QueryOfClass(2) // 2-way join
	c := gen.Cluster()
	rng := rand.New(rand.NewSource(7))
	p, err := placement.RandomValid(rng, q, c)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(q, c, p, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGNNForward measures one cost-model forward pass (inference).
func BenchmarkGNNForward(b *testing.B) {
	gen := workload.New(workload.DefaultConfig(8))
	q := gen.QueryOfClass(4) // 3-way join
	c := gen.Cluster()
	rng := rand.New(rand.NewSource(8))
	p, err := placement.RandomValid(rng, q, c)
	if err != nil {
		b.Fatal(err)
	}
	feat := core.Featurizer{}
	g, err := feat.BuildGraph(q, c, p)
	if err != nil {
		b.Fatal(err)
	}
	cfg := gnn.DefaultConfig(feat.FeatDims())
	cfg.Hidden = 32
	net, err := gnn.New(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := nn.NewTape()
		if _, err := net.Forward(t, g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGNNInfer measures the tape-free inference pass used by cost
// prediction and placement scoring (same math as Forward, no autodiff
// bookkeeping).
func BenchmarkGNNInfer(b *testing.B) {
	gen := workload.New(workload.DefaultConfig(8))
	q := gen.QueryOfClass(4) // 3-way join
	c := gen.Cluster()
	rng := rand.New(rand.NewSource(8))
	p, err := placement.RandomValid(rng, q, c)
	if err != nil {
		b.Fatal(err)
	}
	feat := core.Featurizer{}
	g, err := feat.BuildGraph(q, c, p)
	if err != nil {
		b.Fatal(err)
	}
	cfg := gnn.DefaultConfig(feat.FeatDims())
	cfg.Hidden = 32
	net, err := gnn.New(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Infer(g); err != nil {
			b.Fatal(err)
		}
	}
}

// optimizeBench holds the shared fixture of the batched-optimizer
// benchmarks: a small trained five-metric predictor plus a fixed query,
// cluster and candidate set. Trained once per process.
var (
	optBenchOnce sync.Once
	optBenchErr  error
	optBenchPred *core.Predictor
	optBenchQ    *stream.Query
	optBenchC    *hardware.Cluster
	optBenchCand []sim.Placement
)

func optimizeBenchSetup(b *testing.B) {
	b.Helper()
	optBenchOnce.Do(func() {
		var corpus *dataset.Corpus
		corpus, optBenchErr = dataset.Build(dataset.BuildConfig{
			N: 200, Seed: 99, Gen: workload.DefaultConfig(99), Sim: sim.DefaultConfig(),
		})
		if optBenchErr != nil {
			return
		}
		train, val, _ := corpus.Split(0.8, 0.1, 99)
		cfg := core.DefaultTrainConfig(99)
		cfg.Epochs, cfg.Patience, cfg.Hidden = 3, 0, 24
		optBenchPred, optBenchErr = core.TrainPredictor(train, val, core.PredictorConfig{
			Train: cfg, EnsembleSize: 3,
		})
		if optBenchErr != nil {
			return
		}
		gen := workload.New(workload.DefaultConfig(10))
		optBenchQ = gen.QueryOfClass(4) // 3-way join
		optBenchC = gen.Cluster()
		rng := rand.New(rand.NewSource(10))
		optBenchCand = placement.Enumerate(rng, optBenchQ, optBenchC, 64)
		if len(optBenchCand) == 0 {
			optBenchErr = fmt.Errorf("no placement candidates for benchmark")
		}
	})
	if optBenchErr != nil {
		b.Fatal(optBenchErr)
	}
}

// serialOnly hides the BatchPredictor interface so Optimize falls back to
// the per-candidate scoring path — the pre-batching behavior, used as the
// speedup baseline.
type serialOnly struct{ p placement.Predictor }

func (s serialOnly) PredictPlacement(q *stream.Query, c *hardware.Cluster, p sim.Placement) (placement.PredCosts, error) {
	return s.p.PredictPlacement(q, c, p)
}

// BenchmarkPredictSerial measures per-candidate PredictPlacement scoring:
// every candidate is featurized once per ensemble member and metric
// (5 metrics x 3 members = 15 graph builds per candidate).
func BenchmarkPredictSerial(b *testing.B) {
	optimizeBenchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range optBenchCand {
			if _, err := optBenchPred.PredictPlacement(optBenchQ, optBenchC, p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkPredictBatch measures the batched scoring path: each candidate
// is featurized once, the graph is shared across all ensemble members and
// metrics, and the placement-invariant query/cluster features are cached
// across the whole candidate set.
func BenchmarkPredictBatch(b *testing.B) {
	optimizeBenchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := optBenchPred.PredictBatch(optBenchQ, optBenchC, optBenchCand); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeSerial measures the pre-batching optimizer: one
// worker, per-candidate prediction. Baseline for BenchmarkOptimizeBatch.
func BenchmarkOptimizeSerial(b *testing.B) {
	optimizeBenchSetup(b)
	pred := serialOnly{optBenchPred}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := placement.OptimizeOpts(pred, optBenchQ, optBenchC, optBenchCand,
			placement.MinProcLatency, placement.Options{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeBatch measures the batched, concurrent optimizer:
// candidate chunks scored through PredictBatch by a GOMAXPROCS-bounded
// worker pool with a deterministic ordered merge. On a multi-core runner
// this combines the featurize-once win with near-linear scaling over
// BenchmarkOptimizeSerial.
func BenchmarkOptimizeBatch(b *testing.B) {
	optimizeBenchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := placement.OptimizeOpts(optBenchPred, optBenchQ, optBenchC, optBenchCand,
			placement.MinProcLatency, placement.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearch measures one full placement search per strategy with
// the real trained five-metric predictor scoring every candidate under a
// 64-candidate budget. Unlike internal/placement's BenchmarkSearch, which
// isolates engine overhead behind a stub predictor, this run is dominated
// by ensemble inference — it is the headline search number tracked in the
// BENCH_*.json perf trajectory. Workers is pinned to 1 so ns/op measures
// kernel cost, not scheduler luck.
func BenchmarkSearch(b *testing.B) {
	optimizeBenchSetup(b)
	for _, name := range placement.StrategyNames() {
		strat, err := placement.ParseStrategy(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := placement.Search(optBenchPred, optBenchQ, optBenchC, strat,
					placement.MinProcLatency, placement.Budget{MaxCandidates: 64},
					placement.SearchOptions{Seed: int64(i), Workers: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFleetScenario runs the crash-cascade reference scenario end to
// end — deploy, zone outage, load spike, partial recovery — with the
// trained five-metric predictor scoring every self-healing re-search.
// Workers is pinned to 1 so ns/op tracks scoring cost, not scheduler
// luck; the report is deterministic for any worker count.
func BenchmarkFleetScenario(b *testing.B) {
	optimizeBenchSetup(b)
	sc, err := fleet.Load("examples/crashcascade/scenario.json")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := fleet.Run(context.Background(), sc, fleet.RunOptions{
			Predictor: optBenchPred, Workers: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Timeline) == 0 {
			b.Fatal("fleet run produced an empty timeline")
		}
	}
}

// BenchmarkPlacementEnumeration measures heuristic candidate generation.
func BenchmarkPlacementEnumeration(b *testing.B) {
	gen := workload.New(workload.DefaultConfig(9))
	q := gen.QueryOfClass(4)
	c := gen.Cluster()
	rng := rand.New(rand.NewSource(9))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cands := placement.Enumerate(rng, q, c, 16); len(cands) == 0 {
			b.Fatal("no candidates")
		}
	}
}

// BenchmarkServePredict measures one /v1/predict request through the
// costream-serve HTTP handler stack (decode, fingerprint, predict,
// encode). "cold" disables the response cache so every request runs full
// model inference; "cached" serves repeats of one request from the LRU —
// the gap is the value of caching on a hot serving path.
func BenchmarkServePredict(b *testing.B) {
	optimizeBenchSetup(b)
	body, err := json.Marshal(serve.PredictRequest{
		Query: optBenchQ, Cluster: optBenchC, Placement: optBenchCand[0],
	})
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, cacheSize int) {
		b.Helper()
		srv, err := serve.New(serve.Config{Predictor: optBenchPred, CacheSize: cacheSize})
		if err != nil {
			b.Fatal(err)
		}
		// Prime once so the "cached" variant measures pure hits.
		warm := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, warm)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d: %s", w.Code, w.Body)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
			w := httptest.NewRecorder()
			srv.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				b.Fatalf("status %d: %s", w.Code, w.Body)
			}
		}
	}
	b.Run("cold", func(b *testing.B) { run(b, -1) })
	b.Run("cached", func(b *testing.B) { run(b, 1024) })
}

// Benchmarks reproducing every table and figure of the paper's evaluation
// (Section VII). Each experiment benchmark prints the paper-style result
// table on its first iteration, so `go test -bench=. -benchmem` output
// doubles as the reproduction record (see EXPERIMENTS.md).
//
// Scale with COSTREAM_SCALE (default 1.0); e.g. COSTREAM_SCALE=0.25 for a
// quick smoke run. Shared artifacts (corpora, trained ensembles) are
// cached across benchmarks, so the first model-using benchmark pays the
// training cost.
package costream

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"

	"costream/internal/core"
	"costream/internal/dataset"
	"costream/internal/experiments"
	"costream/internal/gnn"
	"costream/internal/nn"
	"costream/internal/placement"
	"costream/internal/sim"
	"costream/internal/workload"
)

var (
	suiteOnce  sync.Once
	benchSuite *experiments.Suite
	printedMu  sync.Mutex
	printed    = map[string]bool{}
)

func expSuite() *experiments.Suite {
	suiteOnce.Do(func() {
		benchSuite = experiments.NewSuite(experiments.ScaleFromEnv())
		benchSuite.Logf = func(format string, args ...any) {
			fmt.Printf("# "+format+"\n", args...)
		}
	})
	return benchSuite
}

func runExperiment(b *testing.B, run func(s *experiments.Suite) (*experiments.Table, error)) {
	b.Helper()
	s := expSuite()
	for i := 0; i < b.N; i++ {
		t, err := run(s)
		if err != nil {
			b.Fatal(err)
		}
		// The framework may re-invoke the benchmark with a larger b.N;
		// print each experiment's table once per process.
		printedMu.Lock()
		if !printed[b.Name()] {
			printed[b.Name()] = true
			t.WriteText(os.Stdout)
		}
		printedMu.Unlock()
	}
}

// BenchmarkExp1OverallAccuracy reproduces Table III (and the left bar of
// Figure 1): overall q-errors and accuracies on the held-out test set.
func BenchmarkExp1OverallAccuracy(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*experiments.Table, error) {
		r, err := s.Exp1Overall()
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
}

// BenchmarkExp1HardwareBuckets reproduces Figure 7: prediction quality
// grouped over hardware feature ranges.
func BenchmarkExp1HardwareBuckets(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*experiments.Table, error) {
		r, err := s.Exp1Hardware()
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
}

// BenchmarkExp1QueryTypes reproduces Figure 8: prediction quality per
// query class.
func BenchmarkExp1QueryTypes(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*experiments.Table, error) {
		r, err := s.Exp1QueryTypes()
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
}

// BenchmarkExp2aPlacementSpeedup reproduces Figure 9: median processing-
// latency speed-ups of cost-model-optimized initial placements.
func BenchmarkExp2aPlacementSpeedup(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*experiments.Table, error) {
		r, err := s.Exp2aPlacement()
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
}

// BenchmarkExp2bOnlineMonitoring reproduces Figure 10: slow-down and
// monitoring overhead of the online rescheduling baseline.
func BenchmarkExp2bOnlineMonitoring(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*experiments.Table, error) {
		r, err := s.Exp2bMonitoring()
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
}

// BenchmarkExp3Interpolation reproduces Table IV: unseen in-range hardware.
func BenchmarkExp3Interpolation(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*experiments.Table, error) {
		r, err := s.Exp3Interpolation()
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
}

// BenchmarkExp4Extrapolation reproduces Table V: hardware beyond the
// training range, stronger and weaker.
func BenchmarkExp4Extrapolation(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*experiments.Table, error) {
		r, err := s.Exp4Extrapolation()
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
}

// BenchmarkExp5aUnseenPatterns reproduces Table VI-A: filter-chain query
// patterns absent from the training data.
func BenchmarkExp5aUnseenPatterns(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*experiments.Table, error) {
		r, err := s.Exp5aUnseenPatterns()
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
}

// BenchmarkExp5bFineTuning reproduces Figure 11: few-shot fine-tuning on
// unseen query structures.
func BenchmarkExp5bFineTuning(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*experiments.Table, error) {
		r, err := s.Exp5bFineTuning()
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
}

// BenchmarkExp6UnseenBenchmarks reproduces Table VI-B: the Advertisement,
// Spike Detection and Smart Grid benchmark queries.
func BenchmarkExp6UnseenBenchmarks(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*experiments.Table, error) {
		r, err := s.Exp6Benchmarks()
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
}

// BenchmarkExp7aFeatureAblation reproduces Figure 12: featurization
// ablation for E2E latency.
func BenchmarkExp7aFeatureAblation(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*experiments.Table, error) {
		r, err := s.Exp7aFeatureAblation()
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
}

// BenchmarkExp7bMessagePassing reproduces Figure 13: the paper's directed
// message passing vs a traditional undirected scheme.
func BenchmarkExp7bMessagePassing(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*experiments.Table, error) {
		r, err := s.Exp7bMessagePassing()
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	})
}

// BenchmarkFig1Summary reproduces Figure 1: the headline seen-vs-unseen
// comparison, aggregated from Exps 1, 3, 5a and 6.
func BenchmarkFig1Summary(b *testing.B) {
	runExperiment(b, func(s *experiments.Suite) (*experiments.Table, error) {
		e1, err := s.Exp1Overall()
		if err != nil {
			return nil, err
		}
		e3, err := s.Exp3Interpolation()
		if err != nil {
			return nil, err
		}
		e5, err := s.Exp5aUnseenPatterns()
		if err != nil {
			return nil, err
		}
		e6, err := s.Exp6Benchmarks()
		if err != nil {
			return nil, err
		}
		return s.Fig1Summary(e1, e3, e5, e6).Table(), nil
	})
}

// BenchmarkCorpusGeneration measures trace generation + simulated
// execution throughput (the Section VI benchmark collection process).
func BenchmarkCorpusGeneration(b *testing.B) {
	simCfg := sim.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := dataset.Build(dataset.BuildConfig{
			N: 1, Seed: int64(i), Gen: workload.DefaultConfig(int64(i)), Sim: simCfg,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorRun measures one simulated query execution.
func BenchmarkSimulatorRun(b *testing.B) {
	gen := workload.New(workload.DefaultConfig(7))
	q := gen.QueryOfClass(2) // 2-way join
	c := gen.Cluster()
	rng := rand.New(rand.NewSource(7))
	p, err := placement.RandomValid(rng, q, c)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(q, c, p, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGNNForward measures one cost-model forward pass (inference).
func BenchmarkGNNForward(b *testing.B) {
	gen := workload.New(workload.DefaultConfig(8))
	q := gen.QueryOfClass(4) // 3-way join
	c := gen.Cluster()
	rng := rand.New(rand.NewSource(8))
	p, err := placement.RandomValid(rng, q, c)
	if err != nil {
		b.Fatal(err)
	}
	feat := core.Featurizer{}
	g, err := feat.BuildGraph(q, c, p)
	if err != nil {
		b.Fatal(err)
	}
	cfg := gnn.DefaultConfig(feat.FeatDims())
	cfg.Hidden = 32
	net, err := gnn.New(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := nn.NewTape()
		if _, err := net.Forward(t, g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlacementEnumeration measures heuristic candidate generation.
func BenchmarkPlacementEnumeration(b *testing.B) {
	gen := workload.New(workload.DefaultConfig(9))
	q := gen.QueryOfClass(4)
	c := gen.Cluster()
	rng := rand.New(rand.NewSource(9))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cands := placement.Enumerate(rng, q, c, 16); len(cands) == 0 {
			b.Fatal("no candidates")
		}
	}
}

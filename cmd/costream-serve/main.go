// Command costream-serve is a long-running HTTP prediction and placement
// optimization service. It loads a model artifact written by
// costream-train (or Model.Save) once at startup and then answers
// placement queries for arbitrary unseen queries and clusters — the
// paper's zero-shot workflow as a service.
//
//	costream-serve -model model.json.gz -addr :8080
//
//	curl localhost:8080/healthz
//	curl localhost:8080/v1/example | curl -s --json @- localhost:8080/v1/predict
//	curl localhost:8080/stats
//	curl localhost:8080/metrics
//
// Concurrent predict requests for the same query and cluster are
// coalesced into shared batch inference calls, responses are cached in a
// bounded LRU, and total in-flight model work is bounded by a semaphore.
// SIGINT/SIGTERM drain in-flight requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"costream/internal/artifact"
	"costream/internal/obs"
	"costream/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("costream-serve: ")
	var (
		modelPath   = flag.String("model", "model.json.gz", "model artifact path (written by costream-train)")
		addr        = flag.String("addr", ":8080", "listen address")
		cacheSize   = flag.Int("cache", serve.DefaultCacheSize, "prediction cache entries (negative disables)")
		maxInFlight = flag.Int("max-inflight", 0, "max concurrent model evaluations (0 = GOMAXPROCS)")
		optWorkers  = flag.Int("optimize-workers", 0, "scoring workers per optimize request (0 = GOMAXPROCS)")
		drain       = flag.Duration("drain", 10*time.Second, "graceful shutdown timeout")
		readTO      = flag.Duration("read-timeout", 30*time.Second, "max duration to read one request incl. body (0 disables)")
		writeTO     = flag.Duration("write-timeout", 2*time.Minute, "max duration to write one response; bounds slow optimize searches (0 disables)")
		idleTO      = flag.Duration("idle-timeout", 2*time.Minute, "max keep-alive idle time per connection (0 disables)")
		maxBody     = flag.Int64("max-body", serve.DefaultMaxRequestBytes, "max request body bytes; larger bodies are answered 413")
		pprofAddr   = flag.String("pprof-addr", "", "listen address for net/http/pprof (empty disables; keep it private)")
		fast32      = flag.Bool("fast32", false, "run stacked ensemble inference in float32 (faster, ~1e-4 relative drift)")
		traceLog    = flag.Bool("trace-log", false, "log one structured trace record per instrumented request (debug level)")
		ctrlTick    = flag.Duration("control-interval", 15*time.Second, "placement control-loop tick interval (0 disables the loop; /v1/control/tick still works)")
	)
	flag.Parse()

	pred, prov, err := artifact.Load(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	metrics := 0
	for _, s := range pred.Ensembles() {
		if s.Ensemble != nil {
			metrics++
		}
	}
	log.Printf("loaded %s: %d/5 metric ensembles (trained %s, seed %d, corpus %d, epochs %d, ensemble %d)",
		*modelPath, metrics, prov.CreatedAt.Format(time.RFC3339),
		prov.TrainSeed, prov.CorpusSize, prov.Epochs, prov.EnsembleSize)
	if *fast32 {
		pred.SetFast32(true)
		log.Print("float32 stacked inference enabled")
	}

	obs.StartPprof(*pprofAddr, log.Printf)

	var logger *slog.Logger
	if *traceLog {
		logger = obs.NewLogger("costream-serve", slog.LevelDebug, nil)
	}
	srv, err := serve.New(serve.Config{
		Predictor:       pred,
		CacheSize:       *cacheSize,
		MaxInFlight:     *maxInFlight,
		OptimizeWorkers: *optWorkers,
		ModelInfo:       prov,
		Logger:          logger,
		MaxRequestBytes: *maxBody,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Server-side timeouts so a stalled or malicious peer cannot pin a
	// connection goroutine forever. WriteTimeout is generous: it covers
	// the whole handler, including long /v1/optimize searches (which a
	// closed connection now cancels via the request context).
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTO,
		WriteTimeout:      *writeTO,
		IdleTimeout:       *idleTO,
	}

	var loop *serve.ControlLoop
	if *ctrlTick > 0 {
		loop = serve.StartControlLoop(srv.ControlPlane(), *ctrlTick, log.Printf)
		log.Printf("control loop ticking every %v", *ctrlTick)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		errc <- hs.ListenAndServe()
	}()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("shutting down (draining up to %v)...", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop the control loop before closing the listener: the ticker
	// halts, the in-flight tick's searches are cancelled and any
	// migration they still decided lands fully, so no client can observe
	// (and no shutdown can persist) torn registry state.
	if loop != nil {
		if err := loop.Stop(shutdownCtx); err != nil {
			log.Printf("control loop stop: %v", err)
		}
	}
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Fatal(err)
	}
	log.Print("bye")
}

// Command costream-eval evaluates a trained COSTREAM model artifact
// (written by costream-train) against a corpus, reporting the paper's
// evaluation metrics: median and 95th-percentile q-error for regression
// metrics, or accuracy on a balanced subset for the binary metrics. The
// saved model is loaded — nothing is retrained.
//
// -corpus accepts a monolithic .json.gz file or a sharded corpus-store
// directory; sharded corpora are streamed (balanced subsets are selected
// by index), never materialized.
//
// Usage:
//
//	costream-eval -corpus test.json.gz -model model.json.gz             # every trained metric
//	costream-eval -corpus shards/ -model model.json.gz -metric e2e-latency
//
// Legacy bare-network model files (pre-artifact costream-train output)
// are still readable when -metric names the metric they were trained for.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"

	"costream/internal/artifact"
	"costream/internal/core"
	"costream/internal/dataset"
	"costream/internal/gnn"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("costream-eval: ")
	var (
		corpusPath = flag.String("corpus", "corpus.json.gz", "evaluation corpus path")
		modelPath  = flag.String("model", "model.json.gz", "model artifact path")
		metricName = flag.String("metric", "", "restrict evaluation to one metric (required for legacy model files)")
	)
	flag.Parse()

	src, err := dataset.Open(*corpusPath)
	if err != nil {
		log.Fatal(err)
	}

	pred, prov, err := artifact.Load(*modelPath)
	if errors.Is(err, artifact.ErrLegacyFormat) {
		evalLegacy(src, *modelPath, *metricName)
		return
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: trained seed=%d corpus=%d epochs=%d ensemble=%d\n",
		prov.TrainSeed, prov.CorpusSize, prov.Epochs, prov.EnsembleSize)

	ensembles := map[core.Metric]*core.Ensemble{}
	for _, s := range pred.Ensembles() {
		ensembles[s.Metric] = s.Ensemble
	}
	metrics := core.AllMetrics()
	if *metricName != "" {
		m, err := core.ParseMetric(*metricName)
		if err != nil {
			log.Fatal(err)
		}
		metrics = []core.Metric{m}
	}
	evaluated := 0
	for _, m := range metrics {
		e := ensembles[m]
		if e == nil {
			if *metricName != "" {
				log.Fatalf("artifact %s has no ensemble for %v", *modelPath, m)
			}
			continue
		}
		report(e, src, m)
		evaluated++
	}
	if evaluated == 0 {
		log.Fatalf("artifact %s has no trained ensembles", *modelPath)
	}
}

// report prints one metric's evaluation line, ensemble-aggregated like
// the paper (mean for regression, majority vote for classification). The
// corpus is streamed: balanced classification subsets are chosen by
// index, so sharded corpora are never materialized.
func report(p core.TracePredictor, src dataset.Source, metric core.Metric) {
	if metric.IsRegression() {
		sum, err := core.EvaluateRegressionSource(p, src, metric)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-13s Q50=%.2f Q95=%.2f max=%.2f (n=%d successful traces)\n",
			metric, sum.Median, sum.P95, sum.Max, sum.N)
		return
	}
	acc, n, err := core.EvaluateClassificationBalancedSource(p, src, metric, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-13s accuracy=%.2f%% (n=%d, balanced)\n", metric, 100*acc, n)
}

// evalLegacy reads a pre-artifact bare gnn.Model JSON file. Those files
// carry no metric or featurizer state, so -metric must say what the
// network was trained for (the default featurization is assumed).
func evalLegacy(src dataset.Source, path, metricName string) {
	if metricName == "" {
		log.Fatalf("%s is a legacy bare-network model file; pass -metric to name the metric it was trained for, or re-train with costream-train", path)
	}
	metric, err := core.ParseMetric(metricName)
	if err != nil {
		log.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	var net gnn.Model
	if err := json.Unmarshal(data, &net); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: legacy bare-network file (no provenance)\n")
	report(&core.CostModel{Metric: metric, Feat: core.Featurizer{}, Net: &net}, src, metric)
}

// Command costream-eval evaluates a trained COSTREAM model (written by
// costream-train) against a corpus, reporting the paper's evaluation
// metrics: median and 95th-percentile q-error for regression metrics, or
// accuracy on a balanced subset for the binary metrics.
//
// Usage:
//
//	costream-eval -corpus test.json.gz -model model.json -metric e2e-latency
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"costream/internal/core"
	"costream/internal/dataset"
	"costream/internal/gnn"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("costream-eval: ")
	var (
		corpusPath = flag.String("corpus", "corpus.json.gz", "evaluation corpus path")
		modelPath  = flag.String("model", "model.json", "trained model path")
		metricName = flag.String("metric", "e2e-latency", "metric the model was trained for")
	)
	flag.Parse()

	corpus, err := dataset.Load(*corpusPath)
	if err != nil {
		log.Fatal(err)
	}
	data, err := os.ReadFile(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	var net gnn.Model
	if err := json.Unmarshal(data, &net); err != nil {
		log.Fatal(err)
	}
	var metric core.Metric
	found := false
	for _, m := range core.AllMetrics() {
		if m.String() == *metricName {
			metric, found = m, true
		}
	}
	if !found {
		log.Fatalf("unknown metric %q", *metricName)
	}
	model := &core.CostModel{Metric: metric, Feat: core.Featurizer{}, Net: &net}

	if metric.IsRegression() {
		sum, err := core.EvaluateRegression(model, corpus, metric)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: Q50=%.2f Q95=%.2f max=%.2f (n=%d successful traces)\n",
			metric, sum.Median, sum.P95, sum.Max, sum.N)
		return
	}
	bal := corpus.Balanced(func(tr *dataset.Trace) bool { return metric.Label(tr.Metrics) }, 1)
	if bal.Len() == 0 {
		bal = corpus
	}
	acc, err := core.EvaluateClassification(model, bal, metric)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: accuracy=%.2f%% (n=%d, balanced)\n", metric, 100*acc, bal.Len())
}

// Command costream-bench turns `go test -bench` output into a small
// JSON record and gates CI on it.
//
// Parse benchmark output (stdin or a file) into BENCH JSON:
//
//	go test -run XXX -bench . -benchtime 3x . | costream-bench -parse - -out BENCH_pr.json
//
// Compare a fresh run against a committed baseline, failing (exit 1)
// with a per-benchmark diff when ns/op or allocs/op regress by more
// than the tolerance:
//
//	costream-bench -compare BENCH_6.json -new BENCH_pr.json -tolerance 0.20
//
// Baseline entries may be flat measurements or {"before": ..., "after":
// ...} pairs as committed in BENCH_<pr>.json; compare uses "after".
// Only benchmarks present in both files are compared, so
// machine-dependent sub-benchmarks (e.g. workers=N fan-outs) don't have
// to match across environments.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

func main() {
	var (
		parse     = flag.String("parse", "", "parse `go test -bench` output from this file ('-' = stdin) into JSON")
		out       = flag.String("out", "", "write parsed JSON here (default stdout)")
		baseline  = flag.String("compare", "", "baseline BENCH JSON to compare against")
		fresh     = flag.String("new", "", "freshly parsed BENCH JSON (with -compare)")
		tolerance = flag.Float64("tolerance", 0.20, "allowed fractional regression in ns/op and allocs/op")
	)
	flag.Parse()
	switch {
	case *parse != "":
		if err := runParse(*parse, *out); err != nil {
			fmt.Fprintln(os.Stderr, "costream-bench:", err)
			os.Exit(1)
		}
	case *baseline != "":
		ok, err := runCompare(*baseline, *fresh, *tolerance)
		if err != nil {
			fmt.Fprintln(os.Stderr, "costream-bench:", err)
			os.Exit(1)
		}
		if !ok {
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runParse(in, out string) error {
	var r io.Reader = os.Stdin
	if in != "-" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	file, err := ParseBench(r)
	if err != nil {
		return err
	}
	if len(file.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found in %s", in)
	}
	file.Provenance = collectProvenance()
	data, err := file.Marshal()
	if err != nil {
		return err
	}
	if out == "" || out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

func runCompare(basePath, newPath string, tol float64) (bool, error) {
	if newPath == "" {
		return false, fmt.Errorf("-compare requires -new")
	}
	base, err := LoadBench(basePath)
	if err != nil {
		return false, fmt.Errorf("baseline %s: %w", basePath, err)
	}
	cur, err := LoadBench(newPath)
	if err != nil {
		return false, fmt.Errorf("new %s: %w", newPath, err)
	}
	var names []string
	for name := range cur.Benchmarks {
		if _, ok := base.Benchmarks[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return false, fmt.Errorf("no common benchmarks between %s and %s", basePath, newPath)
	}
	ok := true
	for _, name := range names {
		b, c := base.Benchmarks[name].Current(), cur.Benchmarks[name].Current()
		nsBad := c.NsPerOp > b.NsPerOp*(1+tol)
		allocBad := float64(c.AllocsPerOp) > float64(b.AllocsPerOp)*(1+tol)
		status := "ok"
		if nsBad || allocBad {
			status = "REGRESSION"
			ok = false
		}
		fmt.Printf("%-40s %12.0f -> %12.0f ns/op (%+.1f%%)  %6d -> %6d allocs/op  [%s]\n",
			name, b.NsPerOp, c.NsPerOp, 100*(c.NsPerOp-b.NsPerOp)/b.NsPerOp,
			b.AllocsPerOp, c.AllocsPerOp, status)
	}
	if !ok {
		fmt.Printf("FAIL: regression beyond %.0f%% tolerance vs %s\n", tol*100, basePath)
	} else {
		fmt.Printf("ok: %d benchmarks within %.0f%% of %s\n", len(names), tol*100, basePath)
	}
	return ok, nil
}

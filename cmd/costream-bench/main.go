// Command costream-bench turns `go test -bench` output into a small
// JSON record and gates CI on it.
//
// Parse benchmark output (stdin or a file) into BENCH JSON:
//
//	go test -run XXX -bench . -benchtime 3x . | costream-bench -parse - -out BENCH_pr.json
//
// Compare a fresh run against a committed baseline, failing (exit 1)
// with a per-benchmark diff when ns/op or allocs/op regress by more
// than the tolerance:
//
//	costream-bench -compare BENCH_9.json -new BENCH_pr.json -tolerance 0.20
//
// Baseline entries may be flat measurements or {"before": ..., "after":
// ...} pairs as committed in BENCH_<pr>.json; compare uses "after". A
// baseline entry's "tolerance" field overrides the global -tolerance for
// that benchmark. -summary appends the diff as a markdown table to a
// file (CI points it at $GITHUB_STEP_SUMMARY). Only benchmarks present
// in both files are compared, so machine-dependent sub-benchmarks (e.g.
// workers=N fan-outs) don't have to match across environments.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

func main() {
	var (
		parse     = flag.String("parse", "", "parse `go test -bench` output from this file ('-' = stdin) into JSON")
		out       = flag.String("out", "", "write parsed JSON here (default stdout)")
		baseline  = flag.String("compare", "", "baseline BENCH JSON to compare against")
		fresh     = flag.String("new", "", "freshly parsed BENCH JSON (with -compare)")
		tolerance = flag.Float64("tolerance", 0.20, "allowed fractional regression in ns/op and allocs/op (baseline entries may override per benchmark)")
		summary   = flag.String("summary", "", "append a markdown diff table to this file (e.g. $GITHUB_STEP_SUMMARY)")
	)
	flag.Parse()
	switch {
	case *parse != "":
		if err := runParse(*parse, *out); err != nil {
			fmt.Fprintln(os.Stderr, "costream-bench:", err)
			os.Exit(1)
		}
	case *baseline != "":
		ok, err := runCompare(*baseline, *fresh, *tolerance, *summary)
		if err != nil {
			fmt.Fprintln(os.Stderr, "costream-bench:", err)
			os.Exit(1)
		}
		if !ok {
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runParse(in, out string) error {
	var r io.Reader = os.Stdin
	if in != "-" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	file, err := ParseBench(r)
	if err != nil {
		return err
	}
	if len(file.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found in %s", in)
	}
	file.Provenance = collectProvenance()
	data, err := file.Marshal()
	if err != nil {
		return err
	}
	if out == "" || out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

func runCompare(basePath, newPath string, tol float64, summaryPath string) (bool, error) {
	if newPath == "" {
		return false, fmt.Errorf("-compare requires -new")
	}
	base, err := LoadBench(basePath)
	if err != nil {
		return false, fmt.Errorf("baseline %s: %w", basePath, err)
	}
	cur, err := LoadBench(newPath)
	if err != nil {
		return false, fmt.Errorf("new %s: %w", newPath, err)
	}
	var names []string
	for name := range cur.Benchmarks {
		if _, ok := base.Benchmarks[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return false, fmt.Errorf("no common benchmarks between %s and %s", basePath, newPath)
	}
	ok := true
	var md strings.Builder
	fmt.Fprintf(&md, "### Benchmark diff vs `%s`\n\n", basePath)
	md.WriteString("| benchmark | ns/op | Δ ns/op | allocs/op | tol | status |\n")
	md.WriteString("|---|---:|---:|---:|---:|---|\n")
	for _, name := range names {
		be := base.Benchmarks[name]
		b, c := be.Current(), cur.Benchmarks[name].Current()
		t := tol
		if be.Tolerance != nil {
			t = *be.Tolerance
		}
		nsBad := c.NsPerOp > b.NsPerOp*(1+t)
		allocBad := float64(c.AllocsPerOp) > float64(b.AllocsPerOp)*(1+t)
		status := "ok"
		if nsBad || allocBad {
			status = "REGRESSION"
			ok = false
		}
		delta := 100 * (c.NsPerOp - b.NsPerOp) / b.NsPerOp
		fmt.Printf("%-40s %12.0f -> %12.0f ns/op (%+.1f%%)  %6d -> %6d allocs/op  tol %.0f%%  [%s]\n",
			name, b.NsPerOp, c.NsPerOp, delta, b.AllocsPerOp, c.AllocsPerOp, t*100, status)
		fmt.Fprintf(&md, "| `%s` | %.0f → %.0f | %+.1f%% | %d → %d | %.0f%% | %s |\n",
			name, b.NsPerOp, c.NsPerOp, delta, b.AllocsPerOp, c.AllocsPerOp, t*100, status)
	}
	if !ok {
		fmt.Printf("FAIL: regression beyond tolerance vs %s\n", basePath)
		md.WriteString("\n**FAIL**: regression beyond tolerance.\n")
	} else {
		fmt.Printf("ok: %d benchmarks within tolerance of %s\n", len(names), basePath)
		fmt.Fprintf(&md, "\nok: %d benchmarks within tolerance.\n", len(names))
	}
	if summaryPath != "" {
		f, err := os.OpenFile(summaryPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return ok, fmt.Errorf("summary %s: %w", summaryPath, err)
		}
		defer f.Close()
		if _, err := f.WriteString(md.String()); err != nil {
			return ok, fmt.Errorf("summary %s: %w", summaryPath, err)
		}
	}
	return ok, nil
}

package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Measurement is one benchmark's recorded numbers.
type Measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Entry is either a flat measurement or a committed before/after pair
// (as in BENCH_<pr>.json); Current returns the value to compare against.
// A baseline entry may carry its own Tolerance, overriding the compare
// run's global one — noisier benchmarks (multi-worker fan-outs, whole
// fleet scenarios) get wider gates without loosening the rest.
type Entry struct {
	Measurement
	Before    *Measurement `json:"before,omitempty"`
	After     *Measurement `json:"after,omitempty"`
	Tolerance *float64     `json:"tolerance,omitempty"`
}

// Current returns the entry's comparable measurement: "after" when the
// entry is a before/after pair, the flat measurement otherwise.
func (e *Entry) Current() Measurement {
	if e.After != nil {
		return *e.After
	}
	return e.Measurement
}

// BenchFile is the on-disk JSON shape.
type BenchFile struct {
	Note       string            `json:"note,omitempty"`
	CPU        string            `json:"cpu,omitempty"`
	Provenance *Provenance       `json:"provenance,omitempty"`
	Benchmarks map[string]*Entry `json:"benchmarks"`
}

// Marshal renders the file with stable indentation.
func (f *BenchFile) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// LoadBench reads a BENCH JSON file.
func LoadBench(path string) (*BenchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f BenchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, err
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmarks in file")
	}
	return &f, nil
}

// ParseBench extracts benchmark results from `go test -bench` output.
// Lines look like
//
//	BenchmarkServePredict/cold-4   50   1103573 ns/op   24787 B/op   293 allocs/op
//
// The trailing -N GOMAXPROCS suffix is stripped from the name; the cpu:
// line, when present, is carried into the file header.
func ParseBench(r io.Reader) (*BenchFile, error) {
	f := &BenchFile{Benchmarks: map[string]*Entry{}}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			f.CPU = cpu
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("line %q: %w", line, err)
		}
		e := &Entry{Measurement: Measurement{NsPerOp: ns}}
		for i := 4; i+1 < len(fields); i += 2 {
			if fields[i+1] == "allocs/op" {
				allocs, err := strconv.ParseInt(fields[i], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("line %q: %w", line, err)
				}
				e.AllocsPerOp = allocs
			}
		}
		f.Benchmarks[name] = e
	}
	return f, sc.Err()
}

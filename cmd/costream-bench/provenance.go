package main

import (
	"bufio"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"
)

// Provenance records where and when a BENCH file was produced, so a
// committed baseline carries enough context to judge whether a later
// comparison ran on comparable hardware.
type Provenance struct {
	// Timestamp is the parse time in RFC 3339 UTC.
	Timestamp string `json:"timestamp,omitempty"`
	// GitSHA is the repository HEAD at parse time (empty outside a
	// checkout).
	GitSHA string `json:"git_sha,omitempty"`
	// GoMaxProcs is the parallelism the benchmarks ran with.
	GoMaxProcs int `json:"gomaxprocs,omitempty"`
	// CPUModel is the host CPU model string (empty when undetectable).
	CPUModel string `json:"cpu_model,omitempty"`
}

// collectProvenance gathers best-effort environment facts; fields that
// cannot be determined are left empty rather than failing the parse.
func collectProvenance() *Provenance {
	p := &Provenance{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		CPUModel:   cpuModel(),
	}
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		p.GitSHA = strings.TrimSpace(string(out))
	}
	return p
}

// cpuModel reads the first "model name" entry from /proc/cpuinfo.
// Non-Linux hosts (no such file) get an empty string.
func cpuModel() string {
	f, err := os.Open("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		key, val, ok := strings.Cut(sc.Text(), ":")
		if ok && strings.TrimSpace(key) == "model name" {
			return strings.TrimSpace(val)
		}
	}
	return ""
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const sample = `goos: linux
goarch: amd64
pkg: costream
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkServePredict/cold-4         	      50	   1103573 ns/op	   24787 B/op	     293 allocs/op
BenchmarkServePredict/cached-4       	      50	     75197 ns/op	   17180 B/op	     138 allocs/op
BenchmarkSearch/random               	       5	  29357219 ns/op	  105323 B/op	     851 allocs/op
PASS
ok  	costream	2.199s
`

func TestParseBench(t *testing.T) {
	f, err := ParseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if f.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Fatalf("cpu = %q", f.CPU)
	}
	if len(f.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(f.Benchmarks))
	}
	cold := f.Benchmarks["BenchmarkServePredict/cold"]
	if cold == nil {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
	if cold.NsPerOp != 1103573 || cold.AllocsPerOp != 293 {
		t.Fatalf("cold = %+v", cold.Measurement)
	}
	if rnd := f.Benchmarks["BenchmarkSearch/random"]; rnd == nil || rnd.AllocsPerOp != 851 {
		t.Fatalf("random = %+v", f.Benchmarks["BenchmarkSearch/random"])
	}
}

func writeBench(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareUsesAfterAndGates(t *testing.T) {
	base := writeBench(t, "base.json", `{
	  "benchmarks": {
	    "BenchmarkServePredict/cold": {
	      "before": {"ns_per_op": 1302900, "allocs_per_op": 1863},
	      "after":  {"ns_per_op": 550000,  "allocs_per_op": 293}
	    },
	    "BenchmarkOnlyInBase": {"ns_per_op": 1, "allocs_per_op": 1}
	  }
	}`)
	okRun := writeBench(t, "ok.json", `{
	  "benchmarks": {
	    "BenchmarkServePredict/cold": {"ns_per_op": 600000, "allocs_per_op": 293},
	    "BenchmarkOnlyInNew": {"ns_per_op": 9e9, "allocs_per_op": 9999}
	  }
	}`)
	bad := writeBench(t, "bad.json", `{
	  "benchmarks": {
	    "BenchmarkServePredict/cold": {"ns_per_op": 700000, "allocs_per_op": 293}
	  }
	}`)

	// 600000 is within 20% of the baseline's "after" (550000); benchmarks
	// present on only one side are ignored.
	if ok, err := runCompare(base, okRun, 0.20, ""); err != nil || !ok {
		t.Fatalf("within-tolerance run: ok=%v err=%v", ok, err)
	}
	// 700000 is a 27% ns/op regression: must gate.
	if ok, err := runCompare(base, bad, 0.20, ""); err != nil || ok {
		t.Fatalf("regressed run: ok=%v err=%v, want gate", ok, err)
	}
}

func TestCompareGatesOnAllocs(t *testing.T) {
	base := writeBench(t, "base.json", `{
	  "benchmarks": {"BenchmarkX": {"ns_per_op": 1000, "allocs_per_op": 100}}
	}`)
	bad := writeBench(t, "bad.json", `{
	  "benchmarks": {"BenchmarkX": {"ns_per_op": 1000, "allocs_per_op": 150}}
	}`)
	if ok, err := runCompare(base, bad, 0.20, ""); err != nil || ok {
		t.Fatalf("alloc regression: ok=%v err=%v, want gate", ok, err)
	}
}

// TestComparePerBenchmarkTolerance: a baseline entry's own tolerance
// overrides the global one in both directions — widening the gate for a
// noisy benchmark, tightening it for a stable one.
func TestComparePerBenchmarkTolerance(t *testing.T) {
	base := writeBench(t, "base.json", `{
	  "benchmarks": {
	    "BenchmarkNoisy":  {"ns_per_op": 1000, "allocs_per_op": 100, "tolerance": 0.50},
	    "BenchmarkStable": {"ns_per_op": 1000, "allocs_per_op": 100, "tolerance": 0.05}
	  }
	}`)
	// Noisy regresses 40% (inside its 50% gate), stable is unchanged.
	loose := writeBench(t, "loose.json", `{
	  "benchmarks": {
	    "BenchmarkNoisy":  {"ns_per_op": 1400, "allocs_per_op": 100},
	    "BenchmarkStable": {"ns_per_op": 1000, "allocs_per_op": 100}
	  }
	}`)
	if ok, err := runCompare(base, loose, 0.20, ""); err != nil || !ok {
		t.Fatalf("override-widened run: ok=%v err=%v", ok, err)
	}
	// Stable regresses 10%: inside the global 20% but outside its 5% gate.
	tight := writeBench(t, "tight.json", `{
	  "benchmarks": {
	    "BenchmarkNoisy":  {"ns_per_op": 1000, "allocs_per_op": 100},
	    "BenchmarkStable": {"ns_per_op": 1100, "allocs_per_op": 100}
	  }
	}`)
	if ok, err := runCompare(base, tight, 0.20, ""); err != nil || ok {
		t.Fatalf("override-tightened run: ok=%v err=%v, want gate", ok, err)
	}
}

// TestCompareWritesMarkdownSummary: -summary appends a markdown diff
// table (the CI job summary) with one row per compared benchmark.
func TestCompareWritesMarkdownSummary(t *testing.T) {
	base := writeBench(t, "base.json", `{
	  "benchmarks": {"BenchmarkX": {"ns_per_op": 1000, "allocs_per_op": 100}}
	}`)
	cur := writeBench(t, "cur.json", `{
	  "benchmarks": {"BenchmarkX": {"ns_per_op": 1500, "allocs_per_op": 100}}
	}`)
	summary := filepath.Join(t.TempDir(), "summary.md")
	if ok, err := runCompare(base, cur, 0.20, summary); err != nil || ok {
		t.Fatalf("regressed run: ok=%v err=%v, want gate", ok, err)
	}
	data, err := os.ReadFile(summary)
	if err != nil {
		t.Fatal(err)
	}
	md := string(data)
	for _, want := range []string{"| `BenchmarkX` |", "+50.0%", "REGRESSION", "| benchmark |"} {
		if !strings.Contains(md, want) {
			t.Fatalf("summary missing %q:\n%s", want, md)
		}
	}
	// A second compare appends rather than truncates.
	if _, err := runCompare(base, cur, 0.20, summary); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(summary)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(data), "### Benchmark diff"); got != 2 {
		t.Fatalf("summary holds %d diff sections after two compares, want 2", got)
	}
}

func TestProvenanceCollectedAndRoundTrips(t *testing.T) {
	p := collectProvenance()
	if p.GoMaxProcs < 1 {
		t.Errorf("gomaxprocs = %d", p.GoMaxProcs)
	}
	if _, err := time.Parse(time.RFC3339, p.Timestamp); err != nil {
		t.Errorf("timestamp %q: %v", p.Timestamp, err)
	}

	f, err := ParseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	f.Provenance = p
	data, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	path := writeBench(t, "prov.json", string(data))
	got, err := LoadBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Provenance == nil || *got.Provenance != *p {
		t.Errorf("provenance round-trip: got %+v want %+v", got.Provenance, p)
	}
}

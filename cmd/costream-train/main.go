// Command costream-train trains COSTREAM cost models on a corpus written
// by costream-datagen and saves the model weights as JSON.
//
// Usage:
//
//	costream-train -corpus corpus.json.gz -metric e2e-latency -out model.json
//	costream-train -corpus corpus.json.gz -all -out models/   # all five metrics
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"costream/internal/core"
	"costream/internal/dataset"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("costream-train: ")
	var (
		corpusPath = flag.String("corpus", "corpus.json.gz", "training corpus path")
		metricName = flag.String("metric", "e2e-latency", "metric to train (throughput | proc-latency | e2e-latency | backpressure | success)")
		all        = flag.Bool("all", false, "train all five metrics")
		out        = flag.String("out", "model.json", "output file (or directory with -all)")
		epochs     = flag.Int("epochs", 45, "training epochs")
		hidden     = flag.Int("hidden", 32, "GNN hidden width")
		lr         = flag.Float64("lr", 3e-3, "learning rate")
		seed       = flag.Int64("seed", 1, "random seed")
		verbose    = flag.Bool("v", false, "log per-epoch losses")
	)
	flag.Parse()

	corpus, err := dataset.Load(*corpusPath)
	if err != nil {
		log.Fatal(err)
	}
	train, val, _ := corpus.Split(0.8, 0.1, *seed)
	cfg := core.DefaultTrainConfig(*seed)
	cfg.Epochs = *epochs
	cfg.Hidden = *hidden
	cfg.LR = *lr
	if *verbose {
		cfg.Logf = func(format string, args ...any) { log.Printf(format, args...) }
	}

	metrics := []core.Metric{}
	if *all {
		metrics = core.AllMetrics()
	} else {
		m, err := metricByName(*metricName)
		if err != nil {
			log.Fatal(err)
		}
		metrics = append(metrics, m)
	}
	for _, m := range metrics {
		start := time.Now()
		model, err := core.Train(train, val, m, cfg)
		if err != nil {
			log.Fatal(err)
		}
		path := *out
		if *all {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				log.Fatal(err)
			}
			path = filepath.Join(*out, m.String()+".json")
		}
		data, err := json.Marshal(model.Net)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trained %-13s on %d traces in %v -> %s\n",
			m, train.Len(), time.Since(start).Round(time.Second), path)
	}
}

func metricByName(name string) (core.Metric, error) {
	for _, m := range core.AllMetrics() {
		if m.String() == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown metric %q", name)
}

// Command costream-train trains COSTREAM cost models on a corpus written
// by costream-datagen and saves the full predictor — every metric's
// ensemble with GNN weights, featurizer state and provenance — as one
// versioned model artifact loadable by costream-serve, costream-eval,
// costream-optimize and costream.LoadModel.
//
// Usage:
//
//	costream-train -corpus corpus.json.gz -out model.json.gz                 # all five metrics
//	costream-train -corpus corpus.json.gz -metrics e2e-latency,success ...   # a subset
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"costream/internal/artifact"
	"costream/internal/core"
	"costream/internal/dataset"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("costream-train: ")
	var (
		corpusPath = flag.String("corpus", "corpus.json.gz", "training corpus path")
		metricList = flag.String("metrics", "all", `metrics to train: "all" or a comma-separated subset of throughput,proc-latency,e2e-latency,backpressure,success`)
		out        = flag.String("out", "model.json.gz", "output artifact path (.gz = compressed)")
		epochs     = flag.Int("epochs", 45, "training epochs")
		hidden     = flag.Int("hidden", 32, "GNN hidden width")
		lr         = flag.Float64("lr", 3e-3, "learning rate")
		ensemble   = flag.Int("ensemble", 3, "models per metric")
		seed       = flag.Int64("seed", 1, "random seed")
		note       = flag.String("note", "", "free-form provenance note stored in the artifact")
		verbose    = flag.Bool("v", false, "log per-epoch losses")
	)
	flag.Parse()

	if *ensemble < 1 {
		log.Fatalf("-ensemble must be at least 1, got %d", *ensemble)
	}
	corpus, err := dataset.Load(*corpusPath)
	if err != nil {
		log.Fatal(err)
	}
	train, val, _ := corpus.Split(0.8, 0.1, *seed)
	cfg := core.DefaultTrainConfig(*seed)
	cfg.Epochs = *epochs
	cfg.Hidden = *hidden
	cfg.LR = *lr
	if *verbose {
		cfg.Logf = func(format string, args ...any) { log.Printf(format, args...) }
	}

	var metrics []core.Metric
	if *metricList == "all" {
		metrics = core.AllMetrics()
	} else {
		for _, name := range strings.Split(*metricList, ",") {
			m, err := core.ParseMetric(strings.TrimSpace(name))
			if err != nil {
				log.Fatal(err)
			}
			metrics = append(metrics, m)
		}
	}

	start := time.Now()
	pred, err := core.TrainPredictor(train, val, core.PredictorConfig{
		Train:        cfg,
		EnsembleSize: *ensemble,
		Metrics:      metrics,
	})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start).Round(time.Second)

	prov := artifact.Provenance{
		CreatedAt:    time.Now().UTC(),
		TrainSeed:    *seed,
		CorpusSize:   corpus.Len(),
		Epochs:       *epochs,
		EnsembleSize: *ensemble,
		Hidden:       *hidden,
		Note:         *note,
	}
	if err := artifact.Save(*out, pred, prov); err != nil {
		log.Fatal(err)
	}
	names := make([]string, len(metrics))
	for i, m := range metrics {
		names[i] = m.String()
	}
	fmt.Printf("trained %d metric(s) [%s] x %d members on %d traces in %v -> %s\n",
		len(metrics), strings.Join(names, ", "), *ensemble, train.Len(), elapsed, *out)
}

// Command costream-train trains COSTREAM cost models on a corpus written
// by costream-datagen and saves the full predictor — every metric's
// ensemble with GNN weights, featurizer state and provenance — as one
// versioned model artifact loadable by costream-serve, costream-eval,
// costream-optimize and costream.LoadModel.
//
// -corpus accepts both layouts: a monolithic .json.gz file, or a sharded
// corpus-store directory. Sharded corpora are streamed — split by index
// and featurized one trace at a time — so training never materializes the
// full trace set in memory; the trained weights are bit-identical across
// the two layouts.
//
// Usage:
//
//	costream-train -corpus corpus.json.gz -out model.json.gz                 # all five metrics
//	costream-train -corpus corpus/ -out model.json.gz                        # sharded, streamed
//	costream-train -corpus corpus.json.gz -metrics e2e-latency,success ...   # a subset
//	costream-train -corpus corpus.json.gz -runlog train.jsonl                # per-epoch telemetry
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"costream/internal/artifact"
	"costream/internal/core"
	"costream/internal/dataset"
	"costream/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("costream-train: ")
	// Errors return out of run so its defers — notably flushing the CPU
	// profile — execute before the fatal exit.
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		corpusPath = flag.String("corpus", "corpus.json.gz", "training corpus path")
		metricList = flag.String("metrics", "all", `metrics to train: "all" or a comma-separated subset of throughput,proc-latency,e2e-latency,backpressure,success`)
		out        = flag.String("out", "model.json.gz", "output artifact path (.gz = compressed)")
		epochs     = flag.Int("epochs", 45, "training epochs")
		hidden     = flag.Int("hidden", 32, "GNN hidden width")
		lr         = flag.Float64("lr", 3e-3, "learning rate")
		ensemble   = flag.Int("ensemble", 3, "models per metric")
		seed       = flag.Int64("seed", 1, "random seed")
		note       = flag.String("note", "", "free-form provenance note stored in the artifact")
		verbose    = flag.Bool("v", false, "log per-epoch losses")
		workers    = flag.Int("workers", 0, "total training-worker budget and per-model data parallelism (0 = GOMAXPROCS); trained weights are identical for any value")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		runlogPath = flag.String("runlog", "", "append one JSON line per training epoch (metric, member, epoch, losses, duration) to this file")
		pprofAddr  = flag.String("pprof-addr", "", "listen address for net/http/pprof (empty disables; keep it private)")
	)
	flag.Parse()
	obs.StartPprof(*pprofAddr, log.Printf)

	if *ensemble < 1 {
		return fmt.Errorf("-ensemble must be at least 1, got %d", *ensemble)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	core.SetTrainBudget(*workers)
	src, err := dataset.Open(*corpusPath)
	if err != nil {
		return err
	}
	trainIdx, valIdx, _ := dataset.SplitIndices(src.Count(), 0.8, 0.1, *seed)
	cfg := core.DefaultTrainConfig(*seed)
	cfg.Epochs = *epochs
	cfg.Hidden = *hidden
	cfg.LR = *lr
	cfg.Workers = *workers
	if *verbose {
		cfg.Logf = func(format string, args ...any) { log.Printf(format, args...) }
	}
	if *runlogPath != "" {
		rl, err := obs.OpenRunLog(*runlogPath)
		if err != nil {
			return err
		}
		defer rl.Close()
		// The observer runs on every member goroutine; RunLog.Write is
		// concurrency-safe. Write errors past the first epoch are rare
		// (disk full), so surface them without aborting training.
		cfg.Observer = func(es core.EpochStats) {
			if err := rl.Write(es); err != nil {
				log.Printf("runlog write: %v", err)
			}
		}
	}

	var metrics []core.Metric
	if *metricList == "all" {
		metrics = core.AllMetrics()
	} else {
		for _, name := range strings.Split(*metricList, ",") {
			m, err := core.ParseMetric(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			metrics = append(metrics, m)
		}
	}

	start := time.Now()
	pred, err := core.TrainPredictorSource(src, trainIdx, valIdx, core.PredictorConfig{
		Train:        cfg,
		EnsembleSize: *ensemble,
		Metrics:      metrics,
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start).Round(time.Second)

	prov := artifact.Provenance{
		CreatedAt:    time.Now().UTC(),
		TrainSeed:    *seed,
		CorpusSize:   src.Count(),
		Epochs:       *epochs,
		EnsembleSize: *ensemble,
		Hidden:       *hidden,
		Note:         *note,
	}
	if err := artifact.Save(*out, pred, prov); err != nil {
		return err
	}
	names := make([]string, len(metrics))
	for i, m := range metrics {
		names[i] = m.String()
	}
	fmt.Printf("trained %d metric(s) [%s] x %d members on %d traces in %v -> %s\n",
		len(metrics), strings.Join(names, ", "), *ensemble, len(trainIdx), elapsed, *out)
	return nil
}

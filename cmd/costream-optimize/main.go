// Command costream-optimize demonstrates the full placement workflow on a
// randomly drawn IoT scenario: it obtains a COSTREAM model (loading a
// saved artifact, or training a small one from scratch), draws a query
// and an edge-cloud cluster, runs every placement search strategy under
// one shared candidate budget (printing a comparison table), and verifies
// the chosen strategy's decision by executing initial vs optimized
// placement in the simulator.
//
// Usage:
//
//	costream-optimize -seed 7 -traces 800 -budget 64
//	costream-optimize -model model.json.gz -strategy beam -beam 8
//	costream-optimize -model model.json.gz -strategy exhaustive -budget 512
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"costream"
	"costream/internal/obs"
	"costream/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("costream-optimize: ")
	var (
		seed       = flag.Int64("seed", 7, "random seed for query/cluster/model")
		traces     = flag.Int("traces", 800, "training corpus size")
		candidates = flag.Int("candidates", 16, "search budget: max distinct placements scored")
		budget     = flag.Int("budget", 0, "alias for -candidates (takes precedence when set)")
		rounds     = flag.Int("rounds", 0, "max generate->score->prune rounds (0 = unlimited)")
		strategy   = flag.String("strategy", "local-search", "search strategy for the final decision: random | exhaustive | beam | local-search")
		beamWidth  = flag.Int("beam", 8, "beam width for the beam strategy")
		epochs     = flag.Int("epochs", 25, "training epochs")
		workers    = flag.Int("workers", 0, "concurrent candidate-scoring workers (0 = GOMAXPROCS)")
		modelPath  = flag.String("model", "", "load a saved model artifact instead of training")
		saveModel  = flag.String("save-model", "", "save the trained model as an artifact for reuse")
		trace      = flag.Bool("trace", false, "print per-round search telemetry for every strategy")
		pprofAddr  = flag.String("pprof-addr", "", "listen address for net/http/pprof (empty disables; keep it private)")
	)
	flag.Parse()
	obs.StartPprof(*pprofAddr, log.Printf)
	if *budget > 0 {
		*candidates = *budget
	}
	if *candidates <= 0 {
		log.Fatal("search budget must be positive (use -budget or -candidates)")
	}
	if s, err := costream.ParseSearchStrategy(*strategy); err != nil {
		log.Fatal(err)
	} else {
		// Normalize aliases ("local", "hill-climb", ...) to the
		// canonical name the comparison loop selects by.
		*strategy = s.Name()
	}

	var model *costream.Model
	if *modelPath != "" {
		var err error
		model, err = costream.LoadModel(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		info := model.Info()
		fmt.Printf("loaded model %s (trained seed=%d corpus=%d epochs=%d)\n",
			*modelPath, info.TrainSeed, info.CorpusSize, info.Epochs)
	} else {
		fmt.Printf("generating %d training traces...\n", *traces)
		corpus, err := costream.GenerateCorpus(*traces, *seed)
		if err != nil {
			log.Fatal(err)
		}
		opts := costream.DefaultTrainOptions()
		opts.Epochs = *epochs
		opts.Seed = *seed
		start := time.Now()
		fmt.Println("training COSTREAM ensembles (5 metrics x 3 seeds)...")
		model, err = costream.TrainModel(corpus, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trained in %v\n", time.Since(start).Round(time.Second))
	}
	// Applies to trained and loaded models alike (-model + -save-model
	// re-saves, e.g. to recompress or copy an artifact).
	if *saveModel != "" {
		if err := model.Save(*saveModel); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved model artifact to %s\n", *saveModel)
	}
	fmt.Println()

	gen := workload.New(workload.DefaultConfig(*seed + 1))
	q := gen.Query()
	cluster := gen.Cluster()
	fmt.Printf("query: %s with %d operators\n", q.Class(), q.NumOps())
	fmt.Printf("cluster: %d hosts\n", cluster.NumHosts())
	for _, h := range cluster.Hosts {
		fmt.Printf("  %-8s cpu=%4.0f%% ram=%6.0fMB bw=%6.0fMbit lat=%3.0fms\n",
			h.ID, h.CPU, h.RAMMB, h.NetBandwidthMbps, h.NetLatencyMS)
	}

	initial, err := costream.HeuristicPlacement(q, cluster, *seed+2)
	if err != nil {
		log.Fatal(err)
	}

	// Run every strategy under the same budget and seed; the comparison
	// table shows what the search engine buys over blind sampling.
	searchBudget := costream.SearchBudget{MaxCandidates: *candidates, MaxRounds: *rounds}
	newStrategy := func(name string) costream.SearchStrategy {
		if name == "beam" {
			return costream.BeamStrategy{Width: *beamWidth}
		}
		s, err := costream.ParseSearchStrategy(name)
		if err != nil {
			log.Fatal(err)
		}
		return s
	}
	fmt.Printf("\nsearch strategies under a shared budget of %d candidates (objective: %v):\n",
		*candidates, costream.MinProcLatency)
	fmt.Printf("  %-13s %12s %9s %7s %9s %10s\n",
		"strategy", "pred Lp(ms)", "examined", "rounds", "filtered", "time")
	var chosen *costream.SearchResult
	for _, name := range costream.SearchStrategyNames() {
		t0 := time.Now()
		res, err := model.OptimizePlacementSearchOpts(q, cluster, newStrategy(name),
			costream.MinProcLatency, searchBudget,
			costream.SearchOpts{Seed: *seed + 3, Workers: *workers, Telemetry: *trace})
		if err != nil {
			fmt.Printf("  %-13s failed: %v\n", name, err)
			continue
		}
		note := ""
		if res.Complete {
			note = "  (complete)"
		}
		fmt.Printf("  %-13s %12.1f %9d %7d %9d %10v%s\n",
			name, res.Costs.ProcLatencyMS, res.Examined, res.Rounds, res.Filtered,
			time.Since(t0).Round(time.Millisecond), note)
		if *trace {
			printTrace(res.Telemetry)
		}
		if name == *strategy {
			chosen = res
		}
	}
	if chosen == nil {
		log.Fatalf("strategy %q produced no result", *strategy)
	}

	best, predicted := chosen.Placement, chosen.Costs
	fmt.Printf("\nheuristic initial placement: %v\n", initial)
	fmt.Printf("optimized placement (%s):    %v\n", chosen.Strategy, best)
	fmt.Printf("predicted costs: Lp=%.1fms Le=%.1fms T=%.1f ev/s success=%v backpressure=%v\n",
		predicted.ProcLatencyMS, predicted.E2ELatencyMS, predicted.ThroughputTPS,
		predicted.Success, predicted.Backpressured)

	mInit, err := costream.Execute(q, cluster, initial)
	if err != nil {
		log.Fatal(err)
	}
	mBest, err := costream.Execute(q, cluster, best)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmeasured initial:   %v\n", mInit)
	fmt.Printf("measured optimized: %v\n", mBest)
	if mInit.Success && mBest.Success && mBest.ProcLatencyMS > 0 {
		fmt.Printf("speed-up: %.2fx in processing latency\n", mInit.ProcLatencyMS/mBest.ProcLatencyMS)
	}
}

// printTrace renders one strategy's per-round telemetry as an indented
// sub-table under its comparison row.
func printTrace(rounds []costream.SearchRoundStats) {
	if len(rounds) == 0 {
		return
	}
	fmt.Printf("      %5s %6s %6s %5s %5s %8s %12s %10s\n",
		"round", "submit", "fresh", "dup", "filt", "best", "score", "time")
	for _, rs := range rounds {
		fmt.Printf("      %5d %6d %6d %5d %5d %8d %12.4f %10v\n",
			rs.Round, rs.Submitted, rs.Fresh, rs.Duplicates, rs.Filtered,
			rs.BestIndex, rs.BestScore, time.Duration(rs.ElapsedNS).Round(time.Microsecond))
	}
}

// Command costream-optimize demonstrates the full placement workflow on a
// randomly drawn IoT scenario: it obtains a COSTREAM model (loading a
// saved artifact, or training a small one from scratch), draws a query
// and an edge-cloud cluster, enumerates heuristic placement candidates,
// picks the best by predicted cost, and verifies the decision by
// executing initial vs optimized placement in the simulator.
//
// Usage:
//
//	costream-optimize -seed 7 -traces 800 -candidates 16
//	costream-optimize -model model.json.gz -candidates 16     # reuse a saved model
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"costream"
	"costream/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("costream-optimize: ")
	var (
		seed       = flag.Int64("seed", 7, "random seed for query/cluster/model")
		traces     = flag.Int("traces", 800, "training corpus size")
		candidates = flag.Int("candidates", 16, "placement candidates to enumerate")
		epochs     = flag.Int("epochs", 25, "training epochs")
		workers    = flag.Int("workers", 0, "concurrent candidate-scoring workers (0 = GOMAXPROCS)")
		modelPath  = flag.String("model", "", "load a saved model artifact instead of training")
		saveModel  = flag.String("save-model", "", "save the trained model as an artifact for reuse")
	)
	flag.Parse()

	var model *costream.Model
	if *modelPath != "" {
		var err error
		model, err = costream.LoadModel(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		info := model.Info()
		fmt.Printf("loaded model %s (trained seed=%d corpus=%d epochs=%d)\n",
			*modelPath, info.TrainSeed, info.CorpusSize, info.Epochs)
	} else {
		fmt.Printf("generating %d training traces...\n", *traces)
		corpus, err := costream.GenerateCorpus(*traces, *seed)
		if err != nil {
			log.Fatal(err)
		}
		opts := costream.DefaultTrainOptions()
		opts.Epochs = *epochs
		opts.Seed = *seed
		start := time.Now()
		fmt.Println("training COSTREAM ensembles (5 metrics x 3 seeds)...")
		model, err = costream.TrainModel(corpus, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trained in %v\n", time.Since(start).Round(time.Second))
	}
	// Applies to trained and loaded models alike (-model + -save-model
	// re-saves, e.g. to recompress or copy an artifact).
	if *saveModel != "" {
		if err := model.Save(*saveModel); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved model artifact to %s\n", *saveModel)
	}
	fmt.Println()

	gen := workload.New(workload.DefaultConfig(*seed + 1))
	q := gen.Query()
	cluster := gen.Cluster()
	fmt.Printf("query: %s with %d operators\n", q.Class(), q.NumOps())
	fmt.Printf("cluster: %d hosts\n", cluster.NumHosts())
	for _, h := range cluster.Hosts {
		fmt.Printf("  %-8s cpu=%4.0f%% ram=%6.0fMB bw=%6.0fMbit lat=%3.0fms\n",
			h.ID, h.CPU, h.RAMMB, h.NetBandwidthMbps, h.NetLatencyMS)
	}

	initial, err := costream.HeuristicPlacement(q, cluster, *seed+2)
	if err != nil {
		log.Fatal(err)
	}
	best, predicted, err := model.OptimizePlacementWith(q, cluster, *candidates, costream.MinProcLatency, *seed+3, *workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nheuristic initial placement: %v\n", initial)
	fmt.Printf("optimized placement:         %v\n", best)
	fmt.Printf("predicted costs: Lp=%.1fms Le=%.1fms T=%.1f ev/s success=%v backpressure=%v\n",
		predicted.ProcLatencyMS, predicted.E2ELatencyMS, predicted.ThroughputTPS,
		predicted.Success, predicted.Backpressured)

	mInit, err := costream.Execute(q, cluster, initial)
	if err != nil {
		log.Fatal(err)
	}
	mBest, err := costream.Execute(q, cluster, best)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmeasured initial:   %v\n", mInit)
	fmt.Printf("measured optimized: %v\n", mBest)
	if mInit.Success && mBest.Success && mBest.ProcLatencyMS > 0 {
		fmt.Printf("speed-up: %.2fx in processing latency\n", mInit.ProcLatencyMS/mBest.ProcLatencyMS)
	}
}

// Command costream-sim runs a fleet failure-injection scenario: it
// instantiates the declared host fleet, deploys the workload with the
// placement search engine, walks the timed failure-event script with a
// self-healing recovery loop (observed-vs-predicted q-error drift
// detection, hysteresis-gated re-placement) and grades the end-state
// assertions.
//
//	costream-sim run scenario.json
//	costream-sim run -o report.json -workers 4 scenario.json
//	costream-sim run -model model.json.gz scenario.json
//
// The JSON report (stdout, or -o) carries the event timeline, per-query
// q-error trajectories, every recovery action with its reason, and the
// assertion outcomes. Reports are byte-identical for a fixed scenario.
// Exit status: 0 when all assertions pass, 1 when any fails, 2 on usage
// or scenario errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"costream"
)

func main() {
	if len(os.Args) < 2 || os.Args[1] != "run" {
		usage()
		os.Exit(2)
	}
	fs := flag.NewFlagSet("costream-sim run", flag.ExitOnError)
	var (
		out     = fs.String("o", "", "write the JSON report here (default stdout)")
		model   = fs.String("model", "", "trained model artifact to predict costs (default: simulator oracle)")
		workers = fs.Int("workers", 0, "scoring workers per placement search (0 = GOMAXPROCS)")
		quiet   = fs.Bool("q", false, "suppress progress logging on stderr")
	)
	fs.Usage = usage
	fs.Parse(os.Args[2:])
	if fs.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	if err := run(fs.Arg(0), *out, *model, *workers, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "costream-sim:", err)
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: costream-sim run [-o report.json] [-model model.json.gz] [-workers n] [-q] <scenario.json>`)
}

func run(scenarioPath, outPath, modelPath string, workers int, quiet bool) error {
	sc, err := costream.LoadFleetScenario(scenarioPath)
	if err != nil {
		return err
	}
	opts := costream.FleetRunOptions{Workers: workers}
	if !quiet {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	if modelPath != "" {
		m, err := costream.LoadModel(modelPath)
		if err != nil {
			return err
		}
		opts.Predictor = m.Predictor()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := costream.RunFleetScenario(ctx, sc, opts)
	if err != nil {
		return err
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "" || outPath == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			return err
		}
	} else if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}

	if !rep.Pass {
		for _, a := range rep.Assertions {
			if !a.Pass {
				fmt.Fprintf(os.Stderr, "costream-sim: assertion %s failed: %s\n", a.Name, a.Detail)
			}
		}
		os.Exit(1)
	}
	return nil
}

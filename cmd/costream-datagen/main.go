// Command costream-datagen generates a cost-estimation benchmark corpus
// (Section VI of the paper): queries sampled from a named scenario's
// feature grids, executed on simulated heterogeneous hardware under
// random heuristic placements, with the measured cost metrics as labels.
//
// Output is either a monolithic gzip JSON file (the legacy layout) or,
// with -shards, a sharded corpus store: a directory of gzip JSONL shard
// files plus a manifest. Sharded builds stream to disk as shards finish,
// resume after interruption (-resume rebuilds only missing shards), and
// grow in place (-append adds traces); the traces are identical to a
// single monolithic build either way.
//
// Usage:
//
//	costream-datagen -n 2400 -seed 42 -out corpus.json.gz               # monolithic
//	costream-datagen -n 30000 -seed 42 -shards 64 -out corpus/          # sharded
//	costream-datagen -out corpus/ -resume                               # finish an interrupted build
//	costream-datagen -out corpus/ -append 10000                        # grow by 10k traces
//	costream-datagen -scenario edge-heavy -n 5000 -shards 16 -out edge/
//	costream-datagen -list                                              # known scenarios
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"costream/internal/dataset"
	"costream/internal/scenario"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("costream-datagen: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		n        = flag.Int("n", 2400, "number of traces to generate")
		seed     = flag.Int64("seed", 42, "random seed")
		out      = flag.String("out", "corpus.json.gz", "output path: a file (monolithic gzip JSON) or a directory (sharded store)")
		scenName = flag.String("scenario", "training", "corpus recipe; see -list")
		duration = flag.Float64("duration", 120, "simulated execution seconds per query")
		workers  = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		shards   = flag.Int("shards", 0, "split the corpus into this many shards (0 = monolithic file output)")
		resume   = flag.Bool("resume", false, "resume an interrupted sharded build: rebuild only missing shards, using the recipe recorded in the manifest")
		appendN  = flag.Int("append", 0, "grow an existing sharded store by this many traces (implies the manifest's recipe)")
		list     = flag.Bool("list", false, "list known scenarios and exit")
		quiet    = flag.Bool("q", false, "suppress per-shard progress output")
	)
	flag.Parse()

	if *list {
		for _, s := range scenario.All() {
			fmt.Printf("%-18s %s\n", s.Name, s.Description)
		}
		return nil
	}

	start := time.Now()
	progress := log.Printf
	if *quiet {
		progress = func(string, ...any) {}
	}

	// Resume and append reuse the recipe recorded in the manifest — the
	// scenario, seed, shard size and simulation window all must match for
	// old and new shards to form one coherent corpus. Recipe flags passed
	// explicitly alongside -resume/-append must therefore agree with the
	// manifest; a silent override would corrupt the corpus's identity.
	if *resume || *appendN > 0 {
		st, err := dataset.OpenStore(*out)
		if err != nil {
			return fmt.Errorf("-resume/-append need an existing sharded store: %w", err)
		}
		man := st.Manifest
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		switch {
		case set["seed"] && *seed != man.Seed:
			return fmt.Errorf("-seed %d conflicts with the manifest recipe (seed %d); resumed builds keep the recorded recipe", *seed, man.Seed)
		case set["scenario"] && *scenName != man.Scenario:
			return fmt.Errorf("-scenario %s conflicts with the manifest recipe (%s); resumed builds keep the recorded recipe", *scenName, man.Scenario)
		case set["duration"] && man.SimDurationS > 0 && *duration != man.SimDurationS:
			return fmt.Errorf("-duration %g conflicts with the manifest recipe (%gs); resumed builds keep the recorded recipe", *duration, man.SimDurationS)
		case set["n"] && *n != man.N:
			return fmt.Errorf("-n %d conflicts with the manifest's %d traces; use -append to grow a store", *n, man.N)
		case set["shards"]:
			return fmt.Errorf("-shards cannot change on resume; the store uses shard size %d", man.ShardSize)
		}
		if man.Scenario == "" {
			return fmt.Errorf("store %s records no scenario; it cannot be resumed by name", *out)
		}
		sc, err := scenario.Get(man.Scenario)
		if err != nil {
			return err
		}
		total := man.N + *appendN
		cfg := sc.Make(total, man.Seed)
		if man.SimDurationS > 0 {
			cfg.Sim.DurationS = man.SimDurationS
		}
		cfg.Parallelism = *workers
		progress("resuming %s: scenario=%s seed=%d n=%d (+%d) shard-size=%d",
			*out, man.Scenario, man.Seed, total, *appendN, man.ShardSize)
		st2, err := dataset.StreamBuild(cfg, dataset.StreamConfig{
			Dir:      *out,
			Scenario: man.Scenario,
			Resume:   true,
			Progress: progress,
		})
		if err != nil {
			return err
		}
		report(st2.Summarize(), *out, start)
		return nil
	}

	sc, err := scenario.Get(*scenName)
	if err != nil {
		return err
	}
	cfg := sc.Make(*n, *seed)
	cfg.Sim.DurationS = *duration
	cfg.Parallelism = *workers

	if *shards > 0 {
		shardSize := (*n + *shards - 1) / *shards
		st, err := dataset.StreamBuild(cfg, dataset.StreamConfig{
			Dir:       *out,
			ShardSize: shardSize,
			Scenario:  sc.Name,
			Progress:  progress,
		})
		if err != nil {
			return err
		}
		report(st.Summarize(), *out, start)
		return nil
	}

	corpus, err := dataset.Build(cfg)
	if err != nil {
		return err
	}
	if err := corpus.Save(*out); err != nil {
		return err
	}
	report(corpus.Summarize(), *out, start)
	return nil
}

func report(st dataset.Stats, out string, start time.Time) {
	fmt.Printf("wrote %d traces to %s in %v\n", st.N, out, time.Since(start).Round(time.Millisecond))
	fmt.Printf("success rate      %.1f%%\n", 100*st.SuccessRate)
	fmt.Printf("backpressure rate %.1f%%\n", 100*st.BackpressRate)
	fmt.Printf("crash rate        %.1f%%\n", 100*st.CrashRate)
	fmt.Printf("median throughput %.1f ev/s, Lp %.1f ms, Le %.1f ms\n", st.MedianT, st.MedianLpMS, st.MedianLeMS)
}

// Command costream-datagen generates a cost-estimation benchmark corpus
// (Section VI of the paper): queries sampled from the Table II feature
// grids, executed on simulated heterogeneous hardware under random
// heuristic placements, with the measured cost metrics as labels.
//
// Usage:
//
//	costream-datagen -n 2400 -seed 42 -out corpus.json.gz
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"costream/internal/dataset"
	"costream/internal/sim"
	"costream/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("costream-datagen: ")
	var (
		n        = flag.Int("n", 2400, "number of traces to generate")
		seed     = flag.Int64("seed", 42, "random seed")
		out      = flag.String("out", "corpus.json.gz", "output path (gzip JSON)")
		duration = flag.Float64("duration", 120, "simulated execution seconds per query")
		workers  = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	)
	flag.Parse()

	simCfg := sim.DefaultConfig()
	simCfg.DurationS = *duration
	start := time.Now()
	corpus, err := dataset.Build(dataset.BuildConfig{
		N:           *n,
		Seed:        *seed,
		Gen:         workload.DefaultConfig(*seed),
		Sim:         simCfg,
		Parallelism: *workers,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := corpus.Save(*out); err != nil {
		log.Fatal(err)
	}
	st := corpus.Summarize()
	fmt.Printf("wrote %d traces to %s in %v\n", corpus.Len(), *out, time.Since(start).Round(time.Millisecond))
	fmt.Printf("success rate      %.1f%%\n", 100*st.SuccessRate)
	fmt.Printf("backpressure rate %.1f%%\n", 100*st.BackpressRate)
	fmt.Printf("crash rate        %.1f%%\n", 100*st.CrashRate)
	fmt.Printf("median throughput %.1f ev/s, Lp %.1f ms, Le %.1f ms\n", st.MedianT, st.MedianLpMS, st.MedianLeMS)
	os.Exit(0)
}

// Command costream-ctl is the operator CLI for the placement control
// plane exposed by a running costream-serve: deploy queries for
// continuous placement control, inspect their status and decision
// history, and manage host cordon/drain state.
//
//	costream-ctl -addr http://127.0.0.1:8080 deploy -id q1 -f request.json
//	costream-ctl status                # list deployments
//	costream-ctl status q1             # one deployment, with history
//	costream-ctl status -hosts q1      # placement host IDs, one per line
//	costream-ctl cordon edge-a/host-001
//	costream-ctl drain edge-a/host-001
//	costream-ctl uncordon edge-a/host-001
//	costream-ctl tick                  # run one control tick now
//	costream-ctl hosts                 # aggregated host state
//	costream-ctl evict q1
//
// The deploy request file uses the /v1/predict JSON shape (query,
// cluster, optional placement), so `curl $ADDR/v1/example` output
// deploys directly. Host names may contain "/" (zone-qualified fleet
// IDs), which is why they are passed to the API in a JSON body rather
// than a URL path.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"costream/internal/controlplane"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: costream-ctl [-addr URL] <verb> [args]

verbs:
  deploy -f request.json [-id name]   register a query (request: /v1/predict shape)
  status [-hosts] [id]                list deployments, or one deployment's status
  evict <id>                          remove a deployment
  cordon <host>                       mark a host unschedulable
  uncordon <host>                     make a host schedulable again
  drain <host>                        cordon + immediately re-place affected queries
  hosts                               aggregated host state
  tick                                run one control tick now
`)
	os.Exit(2)
}

type client struct {
	addr string
	hc   *http.Client
}

func (c *client) do(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.addr+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s %s: %s: %s", method, path, resp.Status, strings.TrimSpace(string(data)))
	}
	if out != nil {
		return json.Unmarshal(data, out)
	}
	return nil
}

// printJSON renders API responses for humans and scripts alike.
func printJSON(v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(data))
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("costream-ctl: ")
	addr := flag.String("addr", "http://127.0.0.1:8080", "base URL of a running costream-serve")
	timeout := flag.Duration("timeout", 2*time.Minute, "request timeout (placement searches can take a while)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() == 0 {
		usage()
	}
	c := &client{addr: strings.TrimRight(*addr, "/"), hc: &http.Client{Timeout: *timeout}}
	verb, args := flag.Arg(0), flag.Args()[1:]
	switch verb {
	case "deploy":
		cmdDeploy(c, args)
	case "status":
		cmdStatus(c, args)
	case "evict":
		cmdEvict(c, args)
	case "cordon":
		cmdHost(c, "cordon", args)
	case "uncordon":
		cmdHost(c, "uncordon", args)
	case "drain":
		cmdHost(c, "drain", args)
	case "hosts":
		cmdHosts(c)
	case "tick":
		cmdTick(c)
	default:
		log.Printf("unknown verb %q", verb)
		usage()
	}
}

func cmdDeploy(c *client, args []string) {
	fs := flag.NewFlagSet("deploy", flag.ExitOnError)
	file := fs.String("f", "", "request JSON file (query/cluster/optional placement); - for stdin")
	id := fs.String("id", "", "deployment id (server generates one when empty)")
	fs.Parse(args)
	if *file == "" {
		log.Fatal("deploy: -f request.json is required")
	}
	var data []byte
	var err error
	if *file == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(*file)
	}
	if err != nil {
		log.Fatal(err)
	}
	var req map[string]any
	if err := json.Unmarshal(data, &req); err != nil {
		log.Fatalf("deploy: parsing %s: %v", *file, err)
	}
	if *id != "" {
		req["id"] = *id
	}
	var st controlplane.Status
	if err := c.do(http.MethodPost, "/v1/deployments", req, &st); err != nil {
		log.Fatal(err)
	}
	printJSON(st)
}

func cmdStatus(c *client, args []string) {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	hostsOnly := fs.Bool("hosts", false, "print only the placement's host IDs, one per line")
	fs.Parse(args)
	if fs.NArg() == 0 {
		var out struct {
			Deployments []controlplane.Status `json:"deployments"`
		}
		if err := c.do(http.MethodGet, "/v1/deployments", nil, &out); err != nil {
			log.Fatal(err)
		}
		printJSON(out.Deployments)
		return
	}
	var st controlplane.Status
	if err := c.do(http.MethodGet, "/v1/deployments/"+fs.Arg(0), nil, &st); err != nil {
		log.Fatal(err)
	}
	if *hostsOnly {
		seen := map[string]bool{}
		for _, h := range st.Hosts {
			if h != "" && !seen[h] {
				seen[h] = true
				fmt.Println(h)
			}
		}
		return
	}
	printJSON(st)
}

func cmdEvict(c *client, args []string) {
	if len(args) != 1 {
		log.Fatal("evict: exactly one deployment id required")
	}
	var out map[string]any
	if err := c.do(http.MethodDelete, "/v1/deployments/"+args[0], nil, &out); err != nil {
		log.Fatal(err)
	}
	printJSON(out)
}

func cmdHost(c *client, action string, args []string) {
	if len(args) != 1 {
		log.Fatalf("%s: exactly one host required", action)
	}
	var out map[string]any
	if err := c.do(http.MethodPost, "/v1/hosts/"+action, map[string]string{"host": args[0]}, &out); err != nil {
		log.Fatal(err)
	}
	printJSON(out)
}

func cmdHosts(c *client) {
	var out struct {
		Hosts []controlplane.HostStatus `json:"hosts"`
	}
	if err := c.do(http.MethodGet, "/v1/hosts", nil, &out); err != nil {
		log.Fatal(err)
	}
	printJSON(out.Hosts)
}

func cmdTick(c *client) {
	var rep controlplane.TickReport
	if err := c.do(http.MethodPost, "/v1/control/tick", nil, &rep); err != nil {
		log.Fatal(err)
	}
	printJSON(rep)
}

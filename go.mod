module costream

go 1.24

package costream

import (
	"fmt"
	"sync"
	"testing"
)

var (
	facadeOnce   sync.Once
	facadeCorpus *Corpus
	facadeModel  *Model
	facadeErr    error
)

// facade builds one small corpus and model shared by the facade tests.
func facade(t *testing.T) (*Corpus, *Model) {
	t.Helper()
	facadeOnce.Do(func() {
		facadeCorpus, facadeErr = GenerateCorpus(250, 9)
		if facadeErr != nil {
			return
		}
		opts := DefaultTrainOptions()
		opts.Epochs = 8
		opts.EnsembleSize = 1
		facadeModel, facadeErr = TrainModel(facadeCorpus, opts)
	})
	if facadeErr != nil {
		t.Fatal(facadeErr)
	}
	return facadeCorpus, facadeModel
}

func exampleQuery(t *testing.T) *Query {
	t.Helper()
	b := NewQueryBuilder()
	src := b.AddSource(1000, []DataType{TypeInt, TypeDouble})
	f := b.AddFilter(FilterGT, TypeInt, 0.5)
	sink := b.AddSink()
	b.Chain(src, f, sink)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func exampleCluster() *Cluster {
	return &Cluster{Hosts: []*Host{
		{ID: "edge", CPU: 100, RAMMB: 2000, NetLatencyMS: 40, NetBandwidthMbps: 100},
		{ID: "fog", CPU: 400, RAMMB: 8000, NetLatencyMS: 10, NetBandwidthMbps: 800},
		{ID: "cloud", CPU: 800, RAMMB: 32000, NetLatencyMS: 1, NetBandwidthMbps: 10000},
	}}
}

func TestExecute(t *testing.T) {
	q := exampleQuery(t)
	c := exampleCluster()
	m, err := Execute(q, c, Placement{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Success {
		t.Error("simple query should succeed")
	}
	if m.ThroughputTPS <= 0 {
		t.Errorf("throughput = %v, want positive", m.ThroughputTPS)
	}
}

func TestPredictAndOptimize(t *testing.T) {
	_, model := facade(t)
	q := exampleQuery(t)
	c := exampleCluster()
	costs, err := model.PredictCosts(q, c, Placement{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if costs.ProcLatencyMS < 0 || costs.ThroughputTPS < 0 {
		t.Errorf("negative predicted costs: %+v", costs)
	}
	best, bestCosts, err := model.OptimizePlacement(q, c, 12, MinProcLatency, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(best) != q.NumOps() {
		t.Fatalf("placement length %d, want %d", len(best), q.NumOps())
	}
	if bestCosts.ProcLatencyMS < 0 {
		t.Error("negative optimized latency")
	}
	// The chosen placement must be executable.
	mm, err := Execute(q, c, best)
	if err != nil {
		t.Fatal(err)
	}
	if !mm.Success {
		t.Error("optimized placement failed in execution")
	}
}

func TestHeuristicPlacement(t *testing.T) {
	q := exampleQuery(t)
	c := exampleCluster()
	p, err := HeuristicPlacement(q, c, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(q, c); err != nil {
		t.Fatal(err)
	}
}

func TestTrainModelValidation(t *testing.T) {
	if _, err := TrainModel(nil, DefaultTrainOptions()); err == nil {
		t.Error("nil corpus accepted")
	}
	if _, err := TrainModel(&Corpus{}, DefaultTrainOptions()); err == nil {
		t.Error("empty corpus accepted")
	}
}

func TestGenerateCorpus(t *testing.T) {
	c, err := GenerateCorpus(30, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 30 {
		t.Fatalf("corpus size %d, want 30", c.Len())
	}
}

func TestOptimizePlacementSearch(t *testing.T) {
	_, model := facade(t)
	q := exampleQuery(t)
	c := exampleCluster()
	budget := SearchBudget{MaxCandidates: 16}
	for _, name := range SearchStrategyNames() {
		strat, err := ParseSearchStrategy(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := model.OptimizePlacementSearch(q, c, strat, MinProcLatency, budget, 3, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Strategy != name {
			t.Errorf("result strategy %q, want %q", res.Strategy, name)
		}
		if err := res.Placement.Validate(q, c); err != nil {
			t.Errorf("%s: invalid placement: %v", name, err)
		}
		if res.Examined <= 0 || res.Examined > budget.MaxCandidates {
			t.Errorf("%s: examined %d outside (0, %d]", name, res.Examined, budget.MaxCandidates)
		}
	}
	if _, err := ParseSearchStrategy("definitely-not-a-strategy"); err == nil {
		t.Error("unknown strategy name accepted")
	}
}

// TestOptimizePlacementWithIsRandomSearch pins the compatibility bridge:
// the legacy OptimizePlacementWith facade is the RandomSample strategy
// under a k-candidate budget.
func TestOptimizePlacementWithIsRandomSearch(t *testing.T) {
	_, model := facade(t)
	q := exampleQuery(t)
	c := exampleCluster()
	p, costs, err := model.OptimizePlacementWith(q, c, 12, MinProcLatency, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := model.OptimizePlacementSearch(q, c, RandomSampleStrategy{}, MinProcLatency,
		SearchBudget{MaxCandidates: 12}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(p) != fmt.Sprint(res.Placement) || costs != res.Costs {
		t.Errorf("OptimizePlacementWith (%v, %+v) != RandomSample search (%v, %+v)",
			p, costs, res.Placement, res.Costs)
	}
}

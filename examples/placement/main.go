// Placement optimization on an IoT scenario (the paper's headline use
// case, Figure 4): a 2-way windowed join over two sensor streams must be
// placed on a heterogeneous edge-fog-cloud landscape. COSTREAM runs a
// beam search over rule-conforming placements, predicts candidate costs,
// filters out candidates predicted to fail or backpressure, and picks the
// fastest — then the choice is verified against the plain heuristic
// initial placement.
//
// Run with: go run ./examples/placement
package main

import (
	"fmt"
	"log"

	"costream"
)

func main() {
	log.SetFlags(0)

	// Two sensor streams joined in a 4-second window, then aggregated
	// per device group.
	b := costream.NewQueryBuilder()
	temp := b.AddSource(900, []costream.DataType{costream.TypeInt, costream.TypeDouble, costream.TypeInt})
	humid := b.AddSource(900, []costream.DataType{costream.TypeInt, costream.TypeDouble, costream.TypeInt})
	tFil := b.AddFilter(costream.FilterGT, costream.TypeDouble, 0.6)
	join := b.AddJoin(costream.TypeInt,
		costream.Window{Type: costream.WindowSliding, Policy: costream.WindowTimeBased, Size: 4, Slide: 2},
		0.0005)
	agg := b.AddAggregate(costream.AggMean, costream.TypeDouble, costream.TypeInt, true,
		costream.Window{Type: costream.WindowTumbling, Policy: costream.WindowCountBased, Size: 80, Slide: 80},
		0.3)
	sink := b.AddSink()
	b.Connect(temp, tFil).Connect(tFil, join).Connect(humid, join)
	b.Chain(join, agg, sink)
	q, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// An edge-heavy landscape: sensors attach to weak boxes; one fog
	// workstation and one cloud VM are reachable.
	cluster := &costream.Cluster{Hosts: []*costream.Host{
		{ID: "edge-a", CPU: 50, RAMMB: 1000, NetLatencyMS: 80, NetBandwidthMbps: 25},
		{ID: "edge-b", CPU: 100, RAMMB: 2000, NetLatencyMS: 40, NetBandwidthMbps: 50},
		{ID: "fog", CPU: 400, RAMMB: 8000, NetLatencyMS: 10, NetBandwidthMbps: 800},
		{ID: "cloud", CPU: 800, RAMMB: 32000, NetLatencyMS: 2, NetBandwidthMbps: 6400},
	}}

	fmt.Println("training cost model on 800 generated traces...")
	corpus, err := costream.GenerateCorpus(800, 21)
	if err != nil {
		log.Fatal(err)
	}
	opts := costream.DefaultTrainOptions()
	opts.Epochs = 20
	opts.EnsembleSize = 3
	model, err := costream.TrainModel(corpus, opts)
	if err != nil {
		log.Fatal(err)
	}

	// Baseline: the plain IoT placement heuristic (no cost model).
	initial, err := costream.HeuristicPlacement(q, cluster, 5)
	if err != nil {
		log.Fatal(err)
	}
	// COSTREAM: beam-search the placement space under a 24-candidate
	// budget, pick the predicted-fastest sane placement.
	res, err := model.OptimizePlacementSearch(q, cluster, costream.BeamStrategy{Width: 6},
		costream.MinProcLatency, costream.SearchBudget{MaxCandidates: 24}, 6, 0)
	if err != nil {
		log.Fatal(err)
	}
	best, pred := res.Placement, res.Costs
	fmt.Printf("beam search examined %d placements in %d rounds\n", res.Examined, res.Rounds)

	name := func(p costream.Placement) []string {
		out := make([]string, len(p))
		for i, h := range p {
			out[i] = cluster.Hosts[h].ID
		}
		return out
	}
	fmt.Printf("\nheuristic initial: %v\n", name(initial))
	fmt.Printf("COSTREAM choice:   %v (predicted Lp %.0f ms)\n", name(best), pred.ProcLatencyMS)

	mi, err := costream.Execute(q, cluster, initial)
	if err != nil {
		log.Fatal(err)
	}
	mb, err := costream.Execute(q, cluster, best)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmeasured initial:   %v\n", mi)
	fmt.Printf("measured optimized: %v\n", mb)
	if mi.Success && mb.Success {
		fmt.Printf("\nprocessing-latency speed-up: %.2fx\n", mi.ProcLatencyMS/mb.ProcLatencyMS)
	} else if !mi.Success && mb.Success {
		fmt.Println("\nthe heuristic initial placement failed; COSTREAM's choice runs successfully")
	}
}

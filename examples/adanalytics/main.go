// Advertisement analytics: the DSPBench ad-analytics sub-query of the
// paper's Exp 6 — a click stream filtered for bot traffic and joined with
// an impression stream in a sliding time window. The example sweeps the
// click rate and shows how the best placement (and whether the weak edge
// can participate at all) changes with load, the central motivation for a
// learned cost model for initial operator placement.
//
// Run with: go run ./examples/adanalytics
package main

import (
	"fmt"
	"log"
	"math"

	"costream"
)

func adQuery(clickRate float64) (*costream.Query, error) {
	b := costream.NewQueryBuilder()
	clicks := b.AddSource(clickRate, []costream.DataType{
		costream.TypeString, costream.TypeString, costream.TypeInt})
	impressions := b.AddSource(clickRate*4, []costream.DataType{
		costream.TypeString, costream.TypeString, costream.TypeInt,
		costream.TypeDouble, costream.TypeString})
	botFilter := b.AddFilter(costream.FilterNE, costream.TypeString, 0.4)
	// Each click matches its impression inside the window.
	sel := math.Min(1.0/(clickRate*4*8), 1e-2)
	join := b.AddJoin(costream.TypeString,
		costream.Window{Type: costream.WindowSliding, Policy: costream.WindowTimeBased, Size: 8, Slide: 4},
		sel)
	sink := b.AddSink()
	b.Connect(clicks, botFilter).Connect(botFilter, join).Connect(impressions, join).Connect(join, sink)
	return b.Build()
}

func main() {
	log.SetFlags(0)

	cluster := &costream.Cluster{Hosts: []*costream.Host{
		{ID: "edge-pop", CPU: 200, RAMMB: 2000, NetLatencyMS: 20, NetBandwidthMbps: 200},
		{ID: "regional", CPU: 400, RAMMB: 16000, NetLatencyMS: 5, NetBandwidthMbps: 1600},
		{ID: "central", CPU: 800, RAMMB: 32000, NetLatencyMS: 1, NetBandwidthMbps: 10000},
	}}

	fmt.Println("training cost model on 700 generated traces...")
	corpus, err := costream.GenerateCorpus(700, 55)
	if err != nil {
		log.Fatal(err)
	}
	opts := costream.DefaultTrainOptions()
	opts.Epochs = 18
	opts.EnsembleSize = 1
	model, err := costream.TrainModel(corpus, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nclick rate sweep (impressions = 4x clicks):")
	for _, rate := range []float64{250, 1000, 2000} {
		q, err := adQuery(rate)
		if err != nil {
			log.Fatal(err)
		}
		best, pred, err := model.OptimizePlacement(q, cluster, 20, costream.MaxThroughput, 11)
		if err != nil {
			log.Fatal(err)
		}
		measured, err := costream.Execute(q, cluster, best)
		if err != nil {
			log.Fatal(err)
		}
		hosts := ""
		for i, h := range best {
			if i > 0 {
				hosts += ","
			}
			hosts += cluster.Hosts[h].ID
		}
		fmt.Printf("  %5.0f clicks/s -> placement [%s]\n", rate, hosts)
		fmt.Printf("          predicted T %.1f ev/s | measured %v\n", pred.ThroughputTPS, measured)
	}
}

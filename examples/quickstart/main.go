// Quickstart: build a streaming query, train a small COSTREAM model on
// generated traces, save it as a reusable artifact, reload it, predict
// the cost of a placement without executing it, and check the prediction
// against the execution simulator.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"costream"
)

func main() {
	log.SetFlags(0)

	// 1. A linear streaming query: sensor source -> filter -> sink.
	b := costream.NewQueryBuilder()
	src := b.AddSource(2000, []costream.DataType{costream.TypeInt, costream.TypeDouble, costream.TypeString})
	filt := b.AddFilter(costream.FilterGT, costream.TypeDouble, 0.4)
	sink := b.AddSink()
	b.Chain(src, filt, sink)
	q, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s with %d operators\n", q.Class(), q.NumOps())

	// 2. An edge-cloud landscape: a weak edge node, a fog node, a cloud
	// server, described by the four transferable hardware features.
	cluster := &costream.Cluster{Hosts: []*costream.Host{
		{ID: "edge", CPU: 100, RAMMB: 2000, NetLatencyMS: 40, NetBandwidthMbps: 100},
		{ID: "fog", CPU: 400, RAMMB: 8000, NetLatencyMS: 10, NetBandwidthMbps: 800},
		{ID: "cloud", CPU: 800, RAMMB: 32000, NetLatencyMS: 1, NetBandwidthMbps: 10000},
	}}

	// 3. Train a small cost model on simulated executions. (Real uses
	// train once on a large corpus and reuse the model for all queries.)
	fmt.Println("generating 600 training traces and training the cost model...")
	corpus, err := costream.GenerateCorpus(600, 1)
	if err != nil {
		log.Fatal(err)
	}
	opts := costream.DefaultTrainOptions()
	opts.Epochs = 15
	opts.EnsembleSize = 1
	model, err := costream.TrainModel(corpus, opts)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Save the trained model as an artifact and reload it — this is
	// the zero-shot workflow: train once, then reuse the saved model for
	// any future query and cluster (costream-serve serves it over HTTP).
	dir, err := os.MkdirTemp("", "costream-quickstart-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	artifactPath := filepath.Join(dir, "model.json.gz")
	if err := model.Save(artifactPath); err != nil {
		log.Fatal(err)
	}
	reloaded, err := costream.LoadModel(artifactPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved and reloaded the model (trained on %d traces)\n", reloaded.Info().CorpusSize)

	// 5. Predict costs for a concrete placement with the reloaded model
	// (bit-identical to the in-memory one), then verify by executing.
	p := costream.Placement{0, 1, 2} // source on edge, filter on fog, sink on cloud
	pred, err := reloaded.PredictCosts(q, cluster, p)
	if err != nil {
		log.Fatal(err)
	}
	if inMem, err := model.PredictCosts(q, cluster, p); err != nil || pred != inMem {
		log.Fatalf("reloaded model diverged from the trained one: %+v vs %+v (%v)", pred, inMem, err)
	}
	fmt.Printf("\npredicted: Lp=%.0f ms, Le=%.0f ms, T=%.0f ev/s, success=%v, backpressure=%v\n",
		pred.ProcLatencyMS, pred.E2ELatencyMS, pred.ThroughputTPS, pred.Success, pred.Backpressured)

	measured, err := costream.Execute(q, cluster, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured:  %v\n", measured)
}

// Smart Grid: the DEBS 2014 Grand Challenge energy-monitoring queries of
// the paper's Exp 6, expressed in the query algebra and executed on the
// simulator. The global query computes grid-wide sliding-window load; the
// local query groups consumption per household. Both use a 30-second
// window outside the training grid, so cost prediction must extrapolate.
//
// Run with: go run ./examples/smartgrid
package main

import (
	"fmt"
	"log"

	"costream"
)

// smartGridQuery builds the outlier-detection sub-query: smart-meter
// readings (id, ts, value, property, plug, household, house) aggregated
// over a 30 s sliding window — globally or per household.
func smartGridQuery(rate float64, local bool) (*costream.Query, error) {
	b := costream.NewQueryBuilder()
	src := b.AddSource(rate, []costream.DataType{
		costream.TypeInt, costream.TypeInt, costream.TypeDouble, costream.TypeInt,
		costream.TypeInt, costream.TypeInt, costream.TypeInt,
	})
	w := costream.Window{Type: costream.WindowSliding, Policy: costream.WindowTimeBased, Size: 30, Slide: 15}
	var agg int
	if local {
		agg = b.AddAggregate(costream.AggAvg, costream.TypeDouble, costream.TypeInt, true, w, 0.02)
	} else {
		agg = b.AddAggregate(costream.AggAvg, costream.TypeDouble, costream.TypeInt, false, w, 1)
	}
	sink := b.AddSink()
	b.Chain(src, agg, sink)
	return b.Build()
}

func main() {
	log.SetFlags(0)

	cluster := &costream.Cluster{Hosts: []*costream.Host{
		{ID: "meter-gw", CPU: 100, RAMMB: 1000, NetLatencyMS: 20, NetBandwidthMbps: 100},
		{ID: "substation", CPU: 300, RAMMB: 4000, NetLatencyMS: 5, NetBandwidthMbps: 400},
		{ID: "datacenter", CPU: 800, RAMMB: 32000, NetLatencyMS: 1, NetBandwidthMbps: 10000},
	}}

	fmt.Println("training cost model on 700 generated traces...")
	corpus, err := costream.GenerateCorpus(700, 33)
	if err != nil {
		log.Fatal(err)
	}
	opts := costream.DefaultTrainOptions()
	opts.Epochs = 18
	opts.EnsembleSize = 1
	model, err := costream.TrainModel(corpus, opts)
	if err != nil {
		log.Fatal(err)
	}

	for _, variant := range []struct {
		name  string
		local bool
		rate  float64
	}{
		{"global grid load", false, 6400},
		{"per-household load", true, 6400},
	} {
		q, err := smartGridQuery(variant.rate, variant.local)
		if err != nil {
			log.Fatal(err)
		}
		best, pred, err := model.OptimizePlacement(q, cluster, 16, costream.MinE2ELatency, 9)
		if err != nil {
			log.Fatal(err)
		}
		measured, err := costream.Execute(q, cluster, best)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s @ %.0f ev/s\n", variant.name, variant.rate)
		fmt.Printf("  placement (op->host):")
		for i, h := range best {
			fmt.Printf(" %d->%s", i, cluster.Hosts[h].ID)
		}
		fmt.Println()
		fmt.Printf("  predicted Le %.0f ms (30 s window dominates)\n", pred.E2ELatencyMS)
		fmt.Printf("  measured  %v\n", measured)
	}
}

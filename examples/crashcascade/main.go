// Crash-cascade fleet simulation: a 220-host edge/fog/cloud fleet loses
// its entire cloud core zone, absorbs a 1.5x load spike on the degraded
// fleet, then gets a quarter of the core back. The self-healing
// placement loop detects the outage and the prediction drift it causes,
// re-places the affected queries on the surviving hosts (hysteresis
// suppresses marginal moves), and the end-state assertions check that no
// placement references a dead host and that the cascade forced at least
// one re-placement.
//
//	go run ./examples/crashcascade
//
// The same scenario runs from the command line:
//
//	go build -o costream-sim ./cmd/costream-sim
//	./costream-sim run examples/crashcascade/scenario.json
package main

import (
	"context"
	_ "embed"
	"fmt"
	"log"

	"costream"
)

//go:embed scenario.json
var scenarioJSON []byte

func main() {
	sc, err := costream.ParseFleetScenario(scenarioJSON)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := costream.RunFleetScenario(context.Background(), sc, costream.FleetRunOptions{
		Logf: func(format string, args ...any) { fmt.Printf(format+"\n", args...) },
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-6s %-14s %-28s %7s %7s\n", "t(s)", "event", "query: action", "q-thru", "q-lat")
	for _, e := range rep.Timeline {
		for _, q := range e.Queries {
			action := q.Action
			if action == "" {
				action = "ok"
			}
			fmt.Printf("%-6.0f %-14s %-28s %7.2f %7.2f\n",
				e.AtS, e.Event, q.ID+": "+action, q.QErrThroughput, q.QErrProcLatency)
		}
	}

	fmt.Printf("\ntotals: %d events, %d violations, %d migrations, %d forced replacements, %d suppressed\n",
		rep.Totals.Events, rep.Totals.Violations, rep.Totals.Migrations, rep.Totals.Replacements, rep.Totals.Suppressed)
	for _, a := range rep.Assertions {
		status := "PASS"
		if !a.Pass {
			status = "FAIL"
		}
		fmt.Printf("assertion %-22s %s  (%s)\n", a.Name, status, a.Detail)
	}
	if !rep.Pass {
		log.Fatal("scenario assertions failed")
	}
}
